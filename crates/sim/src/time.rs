//! Simulated time: a monotone microsecond clock.
//!
//! The CUP paper measures simulation time in seconds (e.g. 22 000 s runs,
//! 300 s replica lifetimes). We keep a microsecond resolution so per-hop
//! network latencies in the millisecond range remain exact.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulated clock, in microseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far"
    /// sentinel (e.g. the justification window of a first-time update).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `secs` seconds after the simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant `ms` milliseconds after the simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant `us` microseconds after the simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span from `earlier` to `self`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        let d = t - SimTime::from_secs(10);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(4) * 2, SimDuration::from_secs(8));
    }

    #[test]
    fn saturating_operations() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(1e-6).as_micros(), 1);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
