//! The simulation event queue.
//!
//! [`EventQueue`] is a *calendar queue* (Brown 1988): the time axis is
//! divided into fixed-width buckets laid out on a circular calendar, an
//! event is filed under the bucket its firing time falls in, and popping
//! scans forward from the current virtual time, one bucket-day at a time.
//! With the bucket width tracking the average inter-event gap (recomputed
//! on resize), schedule and pop are O(1) amortized — the property that
//! lets 100k-node experiments with millions of pending events run at
//! memory speed, where the previous `BinaryHeap` paid O(log n) per
//! operation on a cache-hostile layout.
//!
//! Ordering is a total order on `(time, sequence)`: the sequence number
//! breaks ties so that events scheduled for the same instant fire in FIFO
//! order, which keeps simulations deterministic. The retired heap-based
//! scheduler survives as [`ReferenceHeapQueue`], the oracle the
//! differential test suite (`tests/calendar_queue_diff.rs`) pins the
//! calendar queue against: same schedule/pop stream, byte-identical pop
//! order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: fires at `at`, carrying `payload`.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Smallest number of calendar buckets; also the initial size.
const MIN_BUCKETS: usize = 16;

/// Initial bucket width: 2¹⁰ µs ≈ 1 ms, the order of one network hop.
const INITIAL_WIDTH_SHIFT: u32 = 10;

/// Widest allowed bucket (2⁴⁰ µs ≈ 13 simulated days per bucket).
const MAX_WIDTH_SHIFT: u32 = 40;

/// A deterministic future-event list (calendar queue).
///
/// Events scheduled for the same instant are returned in the order they
/// were scheduled, whatever the internal bucket layout — the pop order is
/// the total order on `(time, sequence)` and is bit-for-bit identical to
/// the reference heap's.
///
/// # Examples
///
/// ```
/// use cup_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Calendar buckets; `buckets.len()` is always a power of two.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// log₂ of the bucket width in microseconds.
    width_shift: u32,
    /// Lower bound on every pending event's firing time (µs). Maintained
    /// so the pop scan can start at the right calendar day.
    vtime: u64,
    len: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width_shift: INITIAL_WIDTH_SHIFT,
            vtime: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// The calendar bucket a firing time falls in.
    fn bucket_of(&self, at_us: u64) -> usize {
        ((at_us >> self.width_shift) as usize) & (self.buckets.len() - 1)
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at_us = at.as_micros();
        if self.len == 0 || at_us < self.vtime {
            self.vtime = at_us;
        }
        let b = self.bucket_of(at_us);
        self.buckets[b].push(Scheduled { at, seq, payload });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Locates the earliest pending event as `(bucket, index)`.
    ///
    /// Scans one calendar lap starting at `vtime`'s bucket. Because
    /// `vtime` lower-bounds every pending time, an event filed in the
    /// k-th visited bucket either belongs to that bucket's current day
    /// (fires before the day ends) or to a later lap; the earliest event
    /// of the first bucket with a current-day entry is the global
    /// minimum. If a whole lap finds nothing, every event is at least one
    /// lap ahead and a direct scan finds the minimum.
    fn find_min(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let nb = self.buckets.len();
        let start_chunk = self.vtime >> self.width_shift;
        for k in 0..nb as u64 {
            let chunk = start_chunk + k;
            let b = (chunk as usize) & (nb - 1);
            let day_end = (u128::from(chunk) + 1) << self.width_shift;
            let mut best: Option<(usize, u64, u64)> = None;
            for (i, s) in self.buckets[b].iter().enumerate() {
                let at = s.at.as_micros();
                if u128::from(at) < day_end && best.is_none_or(|(_, ba, bs)| (at, s.seq) < (ba, bs))
                {
                    best = Some((i, at, s.seq));
                }
            }
            if let Some((i, _, _)) = best {
                return Some((b, i));
            }
        }
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, s) in bucket.iter().enumerate() {
                let at = s.at.as_micros();
                if best.is_none_or(|(_, _, ba, bs)| (at, s.seq) < (ba, bs)) {
                    best = Some((b, i, at, s.seq));
                }
            }
        }
        best.map(|(b, i, _, _)| (b, i))
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// Events scheduled for the same instant are returned in the order they
    /// were scheduled.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (b, i) = self.find_min()?;
        self.remove_at(b, i)
    }

    /// Removes and returns the earliest event only if it fires strictly
    /// before `deadline`.
    ///
    /// One minimum search serves both the deadline test and the removal —
    /// the engine's `run_until` loop calls this once per event instead of
    /// paying a `peek_time` scan followed by a `pop` scan.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let (b, i) = self.find_min()?;
        if self.buckets[b][i].at >= deadline {
            return None;
        }
        self.remove_at(b, i)
    }

    /// Extracts the event at a position `find_min` located.
    fn remove_at(&mut self, b: usize, i: usize) -> Option<(SimTime, E)> {
        let s = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.vtime = s.at.as_micros();
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some((s.at, s.payload))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.find_min().map(|(b, i)| self.buckets[b][i].at)
    }

    /// Rebuilds the calendar with `new_len` buckets, re-deriving the
    /// bucket width from the current spread of pending firing times so
    /// buckets keep holding O(1) events each.
    fn resize(&mut self, new_len: usize) {
        let mut min_at = u64::MAX;
        let mut max_at = 0u64;
        for s in self.buckets.iter().flatten() {
            let at = s.at.as_micros();
            min_at = min_at.min(at);
            max_at = max_at.max(at);
        }
        if self.len > 0 && max_at > min_at {
            let avg_gap = ((max_at - min_at) / self.len as u64).max(1);
            self.width_shift = avg_gap
                .next_power_of_two()
                .trailing_zeros()
                .min(MAX_WIDTH_SHIFT);
        }
        let old = std::mem::replace(
            &mut self.buckets,
            (0..new_len).map(|_| Vec::new()).collect(),
        );
        for s in old.into_iter().flatten() {
            let b = self.bucket_of(s.at.as_micros());
            self.buckets[b].push(s);
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
    }
}

/// The retired `BinaryHeap` scheduler, kept as the differential-test
/// oracle for [`EventQueue`].
///
/// Same API, same `(time, sequence)` total order; its pop order defines
/// correctness for any future scheduler. Production code should use
/// [`EventQueue`] — this type exists so tests can compare the two on the
/// same event stream.
#[derive(Debug)]
pub struct ReferenceHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for ReferenceHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Removes and returns the earliest event only if it fires strictly
    /// before `deadline` (API parity with [`EventQueue::pop_before`]).
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at >= deadline {
            return None;
        }
        self.pop()
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(5), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(5), "b")));
        q.schedule(SimTime::from_secs(7), "c");
        assert_eq!(q.pop(), Some((SimTime::from_secs(7), "c")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "a")));
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "at5");
        q.schedule(SimTime::from_secs(1), "at1");
        // Events exactly at the deadline are not popped.
        assert_eq!(
            q.pop_before(SimTime::from_secs(5)),
            Some((SimTime::from_secs(1), "at1"))
        );
        assert_eq!(q.pop_before(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1, "deadline miss must not remove the event");
        assert_eq!(
            q.pop_before(SimTime::from_secs(6)),
            Some((SimTime::from_secs(5), "at5"))
        );
        assert_eq!(q.pop_before(SimTime::MAX), None);
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        // Push far past the initial capacity to force several calendar
        // resizes, then drain to force shrinks; order must stay exact.
        let mut q = EventQueue::new();
        let n = 10_000u64;
        for i in 0..n {
            // A deterministic scatter of firing times with collisions.
            q.schedule(SimTime::from_micros((i * 7919) % 1_000), i);
        }
        let mut popped = Vec::with_capacity(n as usize);
        let mut prev: Option<(SimTime, u64)> = None;
        while let Some((at, i)) = q.pop() {
            if let Some((pat, pi)) = prev {
                assert!(pat < at || (pat == at && pi < i), "order violated at {i}");
            }
            prev = Some((at, i));
            popped.push(i);
        }
        popped.sort_unstable();
        assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        // Events far beyond one calendar lap exercise the direct-scan
        // fallback.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1_000_000), "far");
        q.schedule(SimTime::from_secs(1), "near");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "near")));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1_000_000)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1_000_000), "far")));
    }

    #[test]
    fn reference_heap_agrees_on_a_smoke_stream() {
        let mut cal = EventQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        for i in 0u64..500 {
            let at = SimTime::from_micros((i * 6151) % 4_096);
            cal.schedule(at, i);
            heap.schedule(at, i);
        }
        loop {
            assert_eq!(cal.peek_time(), heap.peek_time());
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }
}
