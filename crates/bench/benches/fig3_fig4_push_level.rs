//! Figures 3 and 4: total and miss cost versus push level.
//!
//! Bench-scale version of the paper's push-level sweep; prints the series
//! so `cargo bench` output doubles as a shape check.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_bench::Scale;
use cup_simnet::{report, sweeps};

fn fig3_fig4(c: &mut Criterion) {
    let scale = Scale::Bench;
    let base = scale.base_scenario();
    let rates = scale.rates();
    let levels = scale.push_levels();

    // Print the series once so the bench log shows the figure's shape.
    let points = sweeps::push_level_sweep(&base, &rates, &levels);
    println!("\n{}", report::render_push_level(&points));

    let mut group = c.benchmark_group("fig3_fig4_push_level");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| sweeps::push_level_sweep(&base, &rates, &levels))
    });
    group.finish();
}

criterion_group!(benches, fig3_fig4);
criterion_main!(benches);
