//! Table 2: CUP versus standard caching across network sizes.

use criterion::{criterion_group, criterion_main, Criterion};

use cup_bench::Scale;
use cup_simnet::{report, sweeps};

fn table2(c: &mut Criterion) {
    let scale = Scale::Bench;
    let base = scale.base_scenario();
    let sizes = scale.sizes();

    let cols = sweeps::size_sweep(&base, &sizes);
    println!("\n{}", report::render_size_table(&cols));

    let mut group = c.benchmark_group("table2_sizes");
    group.sample_size(10);
    group.bench_function("sweep", |b| b.iter(|| sweeps::size_sweep(&base, &sizes)));
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
