//! A two-dimensional content-addressable network (CAN).
//!
//! This is the "bare-bones" CAN of Ratnasamy et al. that the CUP paper
//! simulates: the coordinate space is a 2-D torus partitioned into
//! rectangular zones, one owner per zone; a key hashes to a point and is
//! owned by the node whose zone contains the point; routing greedily
//! forwards to the neighbor whose zone is closest (Euclidean, on the torus)
//! to the key's point.
//!
//! Joins split the zone containing the joiner's random point; departures
//! hand the departed zones to the smallest-volume neighbor (the standard
//! CAN takeover rule), which may therefore temporarily manage several
//! zones.

use std::collections::BTreeSet;

use cup_des::{DetRng, KeyId, NodeId};

use crate::churn::{ChurnReport, NeighborChange};
use crate::hashing::key_to_point;
use crate::point::{Point, SPACE_WIDTH};
use crate::traits::{Overlay, OverlayError};
use crate::zone::Zone;

/// A uniform spatial index over the coordinate space.
///
/// Point-location (`owner_of`) is the inner loop of building and routing
/// on large CANs; a linear scan over all zones makes a 100k-node build
/// O(n²). The grid divides the space into `per_axis²` square cells and
/// lists, per cell, every node owning a zone that intersects it — point
/// lookup inspects one short cell list. Ownership is unique (zones
/// partition the space), so the lookup result is identical to the linear
/// scan whatever the cell layout.
#[derive(Debug, Clone)]
struct ZoneGrid {
    /// log₂ of the cell width; cells are `2^shift` units wide.
    shift: u32,
    /// Cells per axis (power of two).
    per_axis: u64,
    /// Per cell: ids of nodes owning a zone intersecting the cell.
    cells: Vec<Vec<NodeId>>,
}

impl ZoneGrid {
    /// Builds an empty grid sized for roughly one zone per cell at
    /// `expected_nodes` nodes.
    fn for_nodes(expected_nodes: usize) -> Self {
        let target = (expected_nodes as f64).sqrt().ceil() as u64;
        let per_axis = target.next_power_of_two().clamp(1, 2_048);
        let shift = (SPACE_WIDTH / per_axis).trailing_zeros();
        ZoneGrid {
            shift,
            per_axis,
            cells: vec![Vec::new(); (per_axis * per_axis) as usize],
        }
    }

    /// The cell containing a point.
    fn cell_of(&self, p: Point) -> usize {
        ((p.y >> self.shift) * self.per_axis + (p.x >> self.shift)) as usize
    }

    /// Registers `id` in every cell its zones intersect.
    fn insert_node(&mut self, id: NodeId, zones: &[Zone]) {
        for zone in zones {
            let (cx0, cx1) = (zone.x0 >> self.shift, (zone.x1 - 1) >> self.shift);
            let (cy0, cy1) = (zone.y0 >> self.shift, (zone.y1 - 1) >> self.shift);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    let cell = &mut self.cells[(cy * self.per_axis + cx) as usize];
                    if !cell.contains(&id) {
                        cell.push(id);
                    }
                }
            }
        }
    }

    /// Clears `id` from every cell the given zones intersect.
    fn remove_node(&mut self, id: NodeId, zones: &[Zone]) {
        for zone in zones {
            let (cx0, cx1) = (zone.x0 >> self.shift, (zone.x1 - 1) >> self.shift);
            let (cy0, cy1) = (zone.y0 >> self.shift, (zone.y1 - 1) >> self.shift);
            for cy in cy0..=cy1 {
                for cx in cx0..=cx1 {
                    self.cells[(cy * self.per_axis + cx) as usize].retain(|&n| n != id);
                }
            }
        }
    }
}

/// One CAN participant.
#[derive(Debug, Clone, Default)]
struct CanNode {
    /// The zones this node owns; empty means the node is dead.
    zones: Vec<Zone>,
    /// Current CAN neighbors (zone abutment).
    neighbors: BTreeSet<NodeId>,
}

impl CanNode {
    fn is_alive(&self) -> bool {
        !self.zones.is_empty()
    }

    fn contains(&self, p: Point) -> bool {
        self.zones.iter().any(|z| z.contains(p))
    }

    fn abuts(&self, other: &CanNode) -> bool {
        self.zones
            .iter()
            .any(|a| other.zones.iter().any(|b| a.abuts(b)))
    }

    fn dist_sq_to(&self, p: Point) -> u128 {
        self.zones
            .iter()
            .map(|z| z.dist_sq_to(p))
            .min()
            .unwrap_or(u128::MAX)
    }

    fn volume(&self) -> u128 {
        self.zones.iter().map(Zone::area).sum()
    }
}

/// A 2-D CAN overlay.
#[derive(Debug, Clone)]
pub struct CanOverlay {
    nodes: Vec<CanNode>,
    alive: usize,
    /// Spatial index for O(1) point location; kept in sync with every
    /// zone change.
    grid: ZoneGrid,
}

impl CanOverlay {
    /// Builds a CAN of `n` nodes by `n - 1` successive joins at
    /// deterministic pseudo-random points.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::TooFewNodes`] when `n` is zero and
    /// [`OverlayError::SpaceExhausted`] if a zone can no longer be split
    /// (practically unreachable below ~2³² nodes).
    pub fn build(n: usize, rng: &mut DetRng) -> Result<Self, OverlayError> {
        if n == 0 {
            return Err(OverlayError::TooFewNodes);
        }
        let mut grid = ZoneGrid::for_nodes(n);
        grid.insert_node(NodeId(0), &[Zone::FULL]);
        let mut overlay = CanOverlay {
            nodes: vec![CanNode {
                zones: vec![Zone::FULL],
                neighbors: BTreeSet::new(),
            }],
            alive: 1,
            grid,
        };
        for _ in 1..n {
            overlay.join(rng)?;
        }
        Ok(overlay)
    }

    /// Adds one node at a pseudo-random point, splitting the zone that
    /// contains it. Returns a report naming the split node and every
    /// neighbor-set delta.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::SpaceExhausted`] if no splittable zone can
    /// be found.
    pub fn join(&mut self, rng: &mut DetRng) -> Result<ChurnReport, OverlayError> {
        // Retry a few times in case the sampled point lands in an
        // unsplittably thin zone.
        for _ in 0..64 {
            let p = Point::new(rng.next(), rng.next());
            let owner = self.owner_of(p).expect("a live CAN covers the whole space");
            let zone_idx = self.nodes[owner.index()]
                .zones
                .iter()
                .position(|z| z.contains(p))
                .expect("owner_of returned a node containing p");
            let zone = self.nodes[owner.index()].zones[zone_idx];
            let Some((lo, hi)) = zone.split() else {
                continue;
            };
            // The joiner takes the half containing its point.
            let (kept, given) = if hi.contains(p) { (lo, hi) } else { (hi, lo) };
            let new_id = NodeId(self.nodes.len() as u32);
            self.nodes[owner.index()].zones[zone_idx] = kept;
            self.nodes.push(CanNode {
                zones: vec![given],
                neighbors: BTreeSet::new(),
            });
            self.alive += 1;
            // Index maintenance: the owner shrank from `zone` to `kept`.
            // Removing the split zone may clear cells still covered by
            // the owner's other zones, so re-register its full zone list
            // (insertion de-duplicates); the joiner covers `given`.
            self.grid.remove_node(owner, &[zone]);
            self.grid
                .insert_node(owner, &self.nodes[owner.index()].zones);
            self.grid.insert_node(new_id, &[given]);
            let report = self.refresh_neighbors(&[owner, new_id]);
            return Ok(ChurnReport {
                joined: Some(new_id),
                departed: None,
                counterpart: Some(owner),
                neighbor_changes: report,
            });
        }
        Err(OverlayError::SpaceExhausted)
    }

    /// Removes `node` from the overlay; its zones are taken over by its
    /// smallest-volume neighbor (ties broken by lowest id), per the CAN
    /// takeover rule. Graceful and ungraceful departures are identical at
    /// the overlay level — what differs (index-entry hand-over) is handled
    /// by the protocol layer.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::NodeNotAlive`] if `node` is not alive and
    /// [`OverlayError::TooFewNodes`] when it is the last node.
    pub fn leave(&mut self, node: NodeId) -> Result<ChurnReport, OverlayError> {
        if !self.is_alive(node) {
            return Err(OverlayError::NodeNotAlive(node));
        }
        if self.alive <= 1 {
            return Err(OverlayError::TooFewNodes);
        }
        let takeover = self.nodes[node.index()]
            .neighbors
            .iter()
            .copied()
            .min_by_key(|&nb| (self.nodes[nb.index()].volume(), nb))
            .expect("a live node in a multi-node CAN has neighbors");
        let zones = std::mem::take(&mut self.nodes[node.index()].zones);
        // Index maintenance: the departed node's cells pass to the
        // takeover node. Coalescing only reshapes the takeover's zones
        // within the same covered area, so the cell lists are unchanged
        // by it.
        self.grid.remove_node(node, &zones);
        self.grid.insert_node(takeover, &zones);
        self.nodes[takeover.index()].zones.extend(zones);
        Self::coalesce_zones(&mut self.nodes[takeover.index()].zones);
        self.alive -= 1;
        let mut changes = self.refresh_neighbors(&[node, takeover]);
        // The departed node's final delta (losing all neighbors) is part of
        // the report too.
        let departed_old = std::mem::take(&mut self.nodes[node.index()].neighbors);
        if !departed_old.is_empty() {
            changes.push(NeighborChange {
                node,
                added: Vec::new(),
                removed: departed_old.into_iter().collect(),
            });
        }
        Ok(ChurnReport {
            joined: None,
            departed: Some(node),
            counterpart: Some(takeover),
            neighbor_changes: changes,
        })
    }

    /// Returns the node owning the zone containing `p`.
    ///
    /// O(1) via the spatial grid; ownership is unique, so this matches a
    /// full scan exactly.
    pub fn owner_of(&self, p: Point) -> Option<NodeId> {
        self.grid.cells[self.grid.cell_of(p)]
            .iter()
            .copied()
            .find(|id| self.nodes[id.index()].contains(p))
    }

    /// The zones currently owned by `node` (empty if dead).
    pub fn zones_of(&self, node: NodeId) -> &[Zone] {
        &self.nodes[node.index()].zones
    }

    /// Repeatedly merges mergeable zone pairs (siblings re-forming their
    /// parent rectangle).
    fn coalesce_zones(zones: &mut Vec<Zone>) {
        loop {
            let mut merged = None;
            'search: for i in 0..zones.len() {
                for j in (i + 1)..zones.len() {
                    if let Some(m) = zones[i].merge(&zones[j]) {
                        merged = Some((i, j, m));
                        break 'search;
                    }
                }
            }
            match merged {
                Some((i, j, m)) => {
                    zones.swap_remove(j);
                    zones[i] = m;
                }
                None => return,
            }
        }
    }

    /// Recomputes neighbor sets after the zones of `changed` nodes were
    /// modified, and returns the per-node deltas.
    ///
    /// Only nodes whose zones changed, plus their former and new
    /// neighbors, can see their neighbor set change: an unchanged zone can
    /// gain or lose adjacency only with a changed zone.
    fn refresh_neighbors(&mut self, changed: &[NodeId]) -> Vec<NeighborChange> {
        // Candidate set: changed nodes plus everything adjacent to them
        // before the change.
        let mut candidates: BTreeSet<NodeId> = changed.iter().copied().collect();
        for &c in changed {
            candidates.extend(self.nodes[c.index()].neighbors.iter().copied());
        }
        let mut deltas = Vec::new();
        // First settle the changed nodes: their full neighbor set is
        // re-derived against all candidates (their new neighbors can only
        // come from that set).
        for &c in changed {
            let mut fresh = BTreeSet::new();
            if self.nodes[c.index()].is_alive() {
                for &other in &candidates {
                    if other == c || !self.nodes[other.index()].is_alive() {
                        continue;
                    }
                    if self.nodes[c.index()].abuts(&self.nodes[other.index()]) {
                        fresh.insert(other);
                    }
                }
            }
            let old = std::mem::replace(&mut self.nodes[c.index()].neighbors, fresh);
            let new = &self.nodes[c.index()].neighbors;
            let added: Vec<NodeId> = new.difference(&old).copied().collect();
            let removed: Vec<NodeId> = old.difference(new).copied().collect();
            if !added.is_empty() || !removed.is_empty() {
                deltas.push(NeighborChange {
                    node: c,
                    added,
                    removed,
                });
            }
        }
        // Then fix up the unchanged candidates: only their adjacency with
        // the changed nodes needs revisiting.
        for &other in &candidates {
            if changed.contains(&other) {
                continue;
            }
            let mut added = Vec::new();
            let mut removed = Vec::new();
            for &c in changed {
                let now_adjacent = self.nodes[other.index()].is_alive()
                    && self.nodes[c.index()].is_alive()
                    && self.nodes[other.index()].abuts(&self.nodes[c.index()]);
                let was_adjacent = self.nodes[other.index()].neighbors.contains(&c);
                if now_adjacent && !was_adjacent {
                    self.nodes[other.index()].neighbors.insert(c);
                    added.push(c);
                } else if !now_adjacent && was_adjacent {
                    self.nodes[other.index()].neighbors.remove(&c);
                    removed.push(c);
                }
            }
            if !added.is_empty() || !removed.is_empty() {
                deltas.push(NeighborChange {
                    node: other,
                    added,
                    removed,
                });
            }
        }
        deltas
    }
}

impl Overlay for CanOverlay {
    fn len(&self) -> usize {
        self.alive
    }

    fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(node.index()).is_some_and(CanNode::is_alive)
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_alive())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    fn authority(&self, key: KeyId) -> NodeId {
        self.owner_of(key_to_point(key))
            .expect("a non-empty CAN covers the whole space")
    }

    fn next_hop(&self, from: NodeId, key: KeyId) -> Result<Option<NodeId>, OverlayError> {
        if !self.is_alive(from) {
            return Err(OverlayError::NodeNotAlive(from));
        }
        let target = key_to_point(key);
        let me = &self.nodes[from.index()];
        if me.contains(target) {
            return Ok(None);
        }
        let my_dist = me.dist_sq_to(target);
        let best = me
            .neighbors
            .iter()
            .copied()
            .map(|nb| (self.nodes[nb.index()].dist_sq_to(target), nb))
            .min();
        match best {
            Some((d, nb)) if d < my_dist => Ok(Some(nb)),
            _ => Err(OverlayError::RoutingStuck { at: from, key }),
        }
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.nodes
            .get(node.index())
            .map(|n| n.neighbors.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::SPACE_WIDTH;

    fn build(n: usize, seed: u64) -> CanOverlay {
        let mut rng = DetRng::seed_from(seed);
        CanOverlay::build(n, &mut rng).unwrap()
    }

    /// Sum of all zone areas must always equal the full space.
    fn total_area(overlay: &CanOverlay) -> u128 {
        overlay.nodes.iter().map(CanNode::volume).sum()
    }

    #[test]
    fn build_partitions_space() {
        for n in [1, 2, 3, 17, 64] {
            let overlay = build(n, 42);
            assert_eq!(overlay.len(), n);
            assert_eq!(total_area(&overlay), (SPACE_WIDTH as u128).pow(2));
        }
    }

    #[test]
    fn every_point_has_exactly_one_owner() {
        let overlay = build(32, 1);
        let mut rng = DetRng::seed_from(99);
        for _ in 0..200 {
            let p = Point::new(rng.next(), rng.next());
            let owners = overlay.nodes.iter().filter(|n| n.contains(p)).count();
            assert_eq!(owners, 1, "point {p:?} owned by {owners} nodes");
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let overlay = build(64, 7);
        for node in overlay.nodes() {
            for nb in overlay.neighbors(node) {
                assert!(
                    overlay.neighbors(nb).contains(&node),
                    "{node} lists {nb} but not vice versa"
                );
            }
        }
    }

    #[test]
    fn neighbor_relation_matches_abutment_exactly() {
        let overlay = build(48, 3);
        let ids = overlay.nodes();
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let listed = overlay.neighbors(a).contains(&b);
                let abuts = overlay.nodes[a.index()].abuts(&overlay.nodes[b.index()]);
                assert_eq!(listed, abuts, "neighbor list wrong for {a}/{b}");
            }
        }
    }

    #[test]
    fn routing_reaches_authority() {
        let overlay = build(128, 11);
        for k in 0..50 {
            let key = KeyId(k);
            let auth = overlay.authority(key);
            for start in [NodeId(0), NodeId(5), NodeId(77), auth] {
                let path = overlay.route(start, key).unwrap();
                assert_eq!(*path.first().unwrap(), start);
                assert_eq!(*path.last().unwrap(), auth);
                // Consecutive path entries must be neighbors.
                for w in path.windows(2) {
                    assert!(overlay.neighbors(w[0]).contains(&w[1]));
                }
            }
        }
    }

    #[test]
    fn routing_hop_counts_scale_like_sqrt_n() {
        // For a 2-D CAN the expected path length is O(√n); check a loose
        // upper bound.
        let overlay = build(256, 13);
        let mut worst = 0;
        for k in 0..40 {
            let d = overlay.distance(NodeId(0), KeyId(k)).unwrap();
            worst = worst.max(d);
        }
        assert!(worst <= 64, "paths unexpectedly long: {worst}");
        assert!(worst >= 1, "256 nodes cannot all be one hop away");
    }

    #[test]
    fn join_report_names_split_node() {
        let mut overlay = build(8, 21);
        let mut rng = DetRng::seed_from(500);
        let report = overlay.join(&mut rng).unwrap();
        let joined = report.joined.unwrap();
        let split = report.counterpart.unwrap();
        assert!(overlay.is_alive(joined));
        assert!(overlay.neighbors(joined).contains(&split));
        assert_eq!(total_area(&overlay), (SPACE_WIDTH as u128).pow(2));
    }

    #[test]
    fn leave_hands_zone_to_neighbor() {
        let mut overlay = build(16, 33);
        let victim = NodeId(5);
        let before = total_area(&overlay);
        let report = overlay.leave(victim).unwrap();
        assert!(!overlay.is_alive(victim));
        assert_eq!(overlay.len(), 15);
        assert_eq!(total_area(&overlay), before);
        let takeover = report.counterpart.unwrap();
        assert!(overlay.is_alive(takeover));
        // The report tells the departed node it lost all neighbors.
        let final_change = report.change_for(victim).unwrap();
        assert!(final_change.added.is_empty());
        assert!(!final_change.removed.is_empty());
    }

    #[test]
    fn routing_still_works_after_churn() {
        let mut overlay = build(64, 55);
        let mut rng = DetRng::seed_from(77);
        for round in 0..10 {
            if round % 2 == 0 {
                let alive = overlay.nodes();
                let victim = alive[rng.choose_index(alive.len())];
                overlay.leave(victim).unwrap();
            } else {
                overlay.join(&mut rng).unwrap();
            }
            for k in 0..10 {
                let key = KeyId(k);
                let start = *overlay.nodes().first().unwrap();
                let path = overlay.route(start, key).unwrap();
                assert_eq!(*path.last().unwrap(), overlay.authority(key));
            }
        }
    }

    #[test]
    fn leave_last_node_fails() {
        let mut overlay = build(1, 1);
        assert!(matches!(
            overlay.leave(NodeId(0)),
            Err(OverlayError::TooFewNodes)
        ));
    }

    #[test]
    fn leave_dead_node_fails() {
        let mut overlay = build(4, 1);
        overlay.leave(NodeId(2)).unwrap();
        assert!(matches!(
            overlay.leave(NodeId(2)),
            Err(OverlayError::NodeNotAlive(NodeId(2)))
        ));
    }

    #[test]
    fn build_zero_nodes_fails() {
        let mut rng = DetRng::seed_from(1);
        assert!(matches!(
            CanOverlay::build(0, &mut rng),
            Err(OverlayError::TooFewNodes)
        ));
    }

    #[test]
    fn authority_is_stable_under_unrelated_churn() {
        // The owner of a key changes only if the zone containing its point
        // is split or taken over.
        let mut overlay = build(32, 9);
        let key = KeyId(4);
        let auth = overlay.authority(key);
        // Remove a node that is not the authority.
        let victim = overlay
            .nodes()
            .into_iter()
            .find(|&n| n != auth && !overlay.neighbors(auth).contains(&n))
            .unwrap();
        overlay.leave(victim).unwrap();
        assert_eq!(overlay.authority(key), auth);
    }
}
