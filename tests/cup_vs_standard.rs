//! The paper's headline comparisons: CUP versus standard caching.

use cup::prelude::*;
use cup_testkit::{assert_cheaper, assert_no_costlier, medium, run_cup_and_standard, scenario};

/// This suite's master seed.
const SEED: u64 = 77;

/// The comparison shape at a non-default size: 4 keys, 1 500 s of
/// querying.
fn sized(nodes: usize, rate: f64) -> Scenario {
    scenario(nodes, 4, rate, 1_500, SEED)
}

#[test]
fn cup_wins_at_moderate_and_high_rates() {
    for rate in [10.0, 50.0] {
        let (cup, std) = run_cup_and_standard(medium(rate, SEED));
        assert_cheaper(&format!("rate {rate}"), &cup, &std);
    }
}

#[test]
fn the_gap_widens_with_query_rate() {
    let ratio = |rate: f64| {
        let (cup, std) = run_cup_and_standard(medium(rate, SEED));
        cup.total_cost() as f64 / std.total_cost() as f64
    };
    let low = ratio(2.0);
    let high = ratio(50.0);
    assert!(
        high < low,
        "normalized total cost must improve with rate: {low:.2} -> {high:.2}"
    );
}

#[test]
fn miss_cost_reduction_matches_paper_range() {
    // The paper reports CUP/standard miss-cost ratios of 0.09–0.47 across
    // its configurations; check we land in a comparable band.
    let (cup, std) = run_cup_and_standard(sized(512, 20.0));
    let ratio = cup.miss_cost() as f64 / std.miss_cost() as f64;
    assert!(
        (0.05..0.6).contains(&ratio),
        "miss-cost ratio {ratio:.2} outside the paper-like band"
    );
}

#[test]
fn second_chance_beats_badly_tuned_linear() {
    // Table 1: at low rates a badly chosen α makes the linear policy
    // worse than second-chance.
    let s = medium(5.0, SEED);
    let second = run_experiment(&ExperimentConfig::cup(s.clone()));
    let mut linear = ExperimentConfig::cup(s);
    linear.node_config = NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha: 0.25 });
    let linear = run_experiment(&linear);
    assert_no_costlier("second-chance vs linear α=0.25", &second, &linear);
}

#[test]
fn push_level_zero_matches_standard_caching_shape() {
    let s = sized(128, 10.0);
    let mut level0 = ExperimentConfig::cup(s.clone());
    level0.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level: 0 });
    let level0 = run_experiment(&level0);
    assert_eq!(level0.overhead(), 0, "level 0 pushes nothing");
    let std = run_experiment(&ExperimentConfig::standard_caching(s));
    // Level-0 CUP still coalesces; it must not cost more than the
    // baseline.
    assert_no_costlier("level-0 CUP vs standard caching", &level0, &std);
}

#[test]
fn deeper_push_levels_cut_misses() {
    let s = medium(10.0, SEED);
    let run_level = |level: u32| {
        let mut c = ExperimentConfig::cup(s.clone());
        c.node_config = NodeConfig::cup_with_policy(CutoffPolicy::PushLevel { level });
        run_experiment(&c)
    };
    let shallow = run_level(0);
    let mid = run_level(4);
    let deep = run_level(16);
    assert!(mid.miss_cost() < shallow.miss_cost());
    assert!(deep.miss_cost() <= mid.miss_cost());
    assert!(deep.overhead() >= mid.overhead());
}

#[test]
fn scaling_the_network_grows_cup_advantage() {
    // Table 2's headline: "CUP reduces latency respectively by 5.5, 7.5,
    // and 11.8 hops per miss for the 1024, 2048, and 4096 node networks"
    // — the absolute hops-per-miss saving grows with network size.
    let saved = |nodes: usize| {
        let (cup, std) = run_cup_and_standard(sized(nodes, 2.0));
        std.miss_latency() - cup.miss_latency()
    };
    let small = saved(128);
    let large = saved(512);
    assert!(
        large > small && large > 1.0,
        "latency saving should grow with size: {small:.2} -> {large:.2}"
    );
}
