//! Query key popularity distributions.
//!
//! "The distribution of queries for keys" is a simulation input (§3.2).
//! Peer-to-peer request popularity is classically heavy-tailed, so besides
//! the uniform distribution we provide a Zipf sampler with configurable
//! exponent.

use cup_des::{DetRng, KeyId};

/// Chooses which key each query asks for.
#[derive(Debug, Clone)]
pub enum KeySelector {
    /// Every key equally likely.
    Uniform {
        /// Number of keys (ids `0..keys`).
        keys: u32,
    },
    /// Zipf-distributed popularity: key rank `i` (1-based) is queried with
    /// probability proportional to `1 / i^exponent`.
    Zipf {
        /// Number of keys.
        keys: u32,
        /// Cumulative probability table (`cdf[i]` = P(rank <= i+1)).
        cdf: Vec<f64>,
    },
}

impl KeySelector {
    /// Uniform selector over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero.
    pub fn uniform(keys: u32) -> Self {
        assert!(keys > 0, "need at least one key");
        KeySelector::Uniform { keys }
    }

    /// Zipf selector over `keys` keys with the given exponent (s = 0 is
    /// uniform; larger s concentrates queries on few keys).
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or the exponent is negative/not finite.
    pub fn zipf(keys: u32, exponent: f64) -> Self {
        assert!(keys > 0, "need at least one key");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be non-negative and finite"
        );
        let mut cdf = Vec::with_capacity(keys as usize);
        let mut acc = 0.0;
        for rank in 1..=keys {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        KeySelector::Zipf { keys, cdf }
    }

    /// Number of keys in the key space.
    pub fn key_count(&self) -> u32 {
        match *self {
            KeySelector::Uniform { keys } => keys,
            KeySelector::Zipf { keys, .. } => keys,
        }
    }

    /// Samples the key of one query.
    pub fn sample(&self, rng: &mut DetRng) -> KeyId {
        match self {
            KeySelector::Uniform { keys } => KeyId(rng.next_below(*keys as u64) as u32),
            KeySelector::Zipf { cdf, .. } => {
                let u = rng.next_f64();
                let rank = cdf.partition_point(|&c| c < u);
                KeyId(rank.min(cdf.len() - 1) as u32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_keys_evenly() {
        let sel = KeySelector::uniform(10);
        let mut rng = DetRng::seed_from(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[sel.sample(&mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} not uniform");
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let sel = KeySelector::zipf(100, 1.0);
        let mut rng = DetRng::seed_from(2);
        let mut counts = vec![0u32; 100];
        let n = 100_000;
        for _ in 0..n {
            counts[sel.sample(&mut rng).index()] += 1;
        }
        // With s = 1 over 100 keys, H(100) ≈ 5.187: rank 1 gets ~19.3%.
        let p1 = counts[0] as f64 / n as f64;
        assert!((0.17..0.22).contains(&p1), "rank-1 share {p1} off");
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let sel = KeySelector::zipf(10, 0.0);
        let mut rng = DetRng::seed_from(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[sel.sample(&mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        for sel in [KeySelector::uniform(3), KeySelector::zipf(3, 1.2)] {
            let mut rng = DetRng::seed_from(4);
            for _ in 0..1_000 {
                assert!(sel.sample(&mut rng).0 < 3);
            }
            assert_eq!(sel.key_count(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_rejected() {
        let _ = KeySelector::uniform(0);
    }
}
