//! Incentive-based cut-off policies (§3.4).
//!
//! On receiving an update for a key whose interest bits are all clear, a
//! node decides whether there is incentive to keep receiving updates or to
//! cut them off with a Clear-Bit message. The paper examines:
//!
//! * **probability-based** thresholds that approximate, from the node's
//!   distance D to the authority, the probability that an update pushed
//!   this far is justified — a *linear* threshold (popular if at least
//!   `α·D` queries arrived since the last update) and a more lenient
//!   *logarithmic* one (`α·lg D`);
//! * **log-based** policies that look at the recent history of update
//!   arrivals — the *second-chance* policy (n = 3) cuts off after two
//!   consecutive update intervals without a single query;
//! * a fixed **push level**, used in §3.3 to find the optimal level a
//!   posteriori (updates propagate to all interested nodes at most `p`
//!   hops from the authority; `p = 0` degenerates to standard caching).

/// Inputs to a cut-off decision.
#[derive(Debug, Clone, Copy)]
pub struct CutoffContext {
    /// Queries for the key received since the last decision window reset.
    pub queries_since_reset: u32,
    /// Consecutive decision points with zero queries, *including* the
    /// current one if it is empty.
    pub consecutive_empty: u32,
    /// Distance (hops) of this node from the key's authority, as carried
    /// by the update being considered.
    pub depth: u32,
}

/// A cut-off policy: decides whether a node keeps receiving updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CutoffPolicy {
    /// Never cut off: receive every update (the "all-out push" reference
    /// configuration used to find the maximal-benefit baseline in §3.3).
    Always,
    /// Cut off immediately: never receive updates beyond the first-time
    /// response. Combined with nothing else this behaves like standard
    /// caching for maintenance traffic.
    Never,
    /// Keep receiving while `queries_since_reset >= alpha * depth`.
    Linear {
        /// Queries-per-hop threshold slope.
        alpha: f64,
    },
    /// Keep receiving while `queries_since_reset >= alpha * lg(depth)`.
    Logarithmic {
        /// Queries-per-lg-hop threshold slope.
        alpha: f64,
    },
    /// Log-based policy over the last `n` update arrivals: cut off once
    /// `n - 1` consecutive update intervals saw no query. `n = 3` is the
    /// paper's second-chance policy.
    LogBased {
        /// History length in update arrivals (must be at least 2).
        n: u32,
    },
    /// Keep receiving while at most `level` hops from the authority.
    PushLevel {
        /// Maximum depth to which updates propagate.
        level: u32,
    },
}

impl CutoffPolicy {
    /// The paper's second-chance policy (log-based with n = 3).
    pub fn second_chance() -> Self {
        CutoffPolicy::LogBased { n: 3 }
    }

    /// Returns `true` if the node should keep receiving updates for the
    /// key, `false` to cut off (push a Clear-Bit upstream).
    pub fn keep_receiving(&self, ctx: &CutoffContext) -> bool {
        match *self {
            CutoffPolicy::Always => true,
            CutoffPolicy::Never => false,
            CutoffPolicy::Linear { alpha } => {
                ctx.queries_since_reset as f64 >= alpha * ctx.depth as f64
            }
            CutoffPolicy::Logarithmic { alpha } => {
                let lg = (ctx.depth.max(1) as f64).log2();
                ctx.queries_since_reset as f64 >= alpha * lg
            }
            CutoffPolicy::LogBased { n } => ctx.consecutive_empty < n.saturating_sub(1),
            CutoffPolicy::PushLevel { level } => ctx.depth <= level,
        }
    }

    /// Returns `true` if this policy limits propagation at the *sender*
    /// side to children within `level` hops of the authority. Only
    /// [`CutoffPolicy::PushLevel`] does: the paper defines push level so
    /// that a level of 0 means the authority squelches updates before
    /// sending anything, rather than children cutting off after receiving
    /// one update each.
    pub fn sender_side_level(&self) -> Option<u32> {
        match *self {
            CutoffPolicy::PushLevel { level } => Some(level),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(queries: u32, empty: u32, depth: u32) -> CutoffContext {
        CutoffContext {
            queries_since_reset: queries,
            consecutive_empty: empty,
            depth,
        }
    }

    #[test]
    fn always_and_never() {
        assert!(CutoffPolicy::Always.keep_receiving(&ctx(0, 99, 99)));
        assert!(!CutoffPolicy::Never.keep_receiving(&ctx(99, 0, 1)));
    }

    #[test]
    fn linear_threshold_scales_with_depth() {
        let p = CutoffPolicy::Linear { alpha: 0.5 };
        // Depth 10 needs at least 5 queries.
        assert!(p.keep_receiving(&ctx(5, 0, 10)));
        assert!(!p.keep_receiving(&ctx(4, 0, 10)));
        // Close to the root almost anything passes.
        assert!(p.keep_receiving(&ctx(1, 0, 2)));
    }

    #[test]
    fn logarithmic_is_more_lenient_than_linear() {
        let lin = CutoffPolicy::Linear { alpha: 0.5 };
        let log = CutoffPolicy::Logarithmic { alpha: 0.5 };
        // At depth 16: linear needs 8 queries, logarithmic needs 2.
        assert!(!lin.keep_receiving(&ctx(2, 0, 16)));
        assert!(log.keep_receiving(&ctx(2, 0, 16)));
    }

    #[test]
    fn logarithmic_at_depth_one_keeps() {
        // lg(1) = 0, so the threshold is zero queries.
        let log = CutoffPolicy::Logarithmic { alpha: 0.5 };
        assert!(log.keep_receiving(&ctx(0, 0, 1)));
    }

    #[test]
    fn second_chance_cuts_on_second_empty_interval() {
        let p = CutoffPolicy::second_chance();
        assert!(p.keep_receiving(&ctx(0, 0, 5)), "no history yet");
        assert!(
            p.keep_receiving(&ctx(0, 1, 5)),
            "first empty: second chance"
        );
        assert!(!p.keep_receiving(&ctx(0, 2, 5)), "second empty: cut off");
    }

    #[test]
    fn log_based_general_n() {
        let p = CutoffPolicy::LogBased { n: 5 };
        assert!(p.keep_receiving(&ctx(0, 3, 1)));
        assert!(!p.keep_receiving(&ctx(0, 4, 1)));
    }

    #[test]
    fn push_level_caps_depth() {
        let p = CutoffPolicy::PushLevel { level: 3 };
        assert!(p.keep_receiving(&ctx(0, 9, 3)));
        assert!(!p.keep_receiving(&ctx(9, 0, 4)));
        assert_eq!(p.sender_side_level(), Some(3));
        assert_eq!(CutoffPolicy::Always.sender_side_level(), None);
    }
}
