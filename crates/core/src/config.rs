//! Per-node protocol configuration.

use cup_des::SimDuration;

use crate::policy::{CutoffPolicy, PropagationPolicy};
use crate::popularity::ResetMode;

/// Which protocol a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Full CUP: coalescing query channels, interest tracking, controlled
    /// update propagation.
    Cup,
    /// The baseline of every experiment in the paper: plain pull caching
    /// with expiration times. Queries are forwarded individually (no
    /// coalescing — this is the "open connection" model of
    /// Gnutella/Freenet-style systems, §4), responses are cached along the
    /// reverse path, and no maintenance updates are ever propagated.
    StandardCaching,
}

/// Configuration of one CUP node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Protocol mode (CUP or the standard-caching baseline).
    pub mode: Mode,
    /// Per-key cut-off policy assignment for incoming updates (§3.4).
    /// A uniform table is the paper's homogeneous configuration; a
    /// per-class table gives different key classes different policies.
    pub policies: PropagationPolicy,
    /// When popularity decision windows reset (§3.6).
    pub reset_mode: ResetMode,
    /// If `true`, outgoing updates pass through the bounded §2.8 queues
    /// and are released by `service_outgoing`; if `false` the node has
    /// full capacity and pushes updates immediately.
    pub capacity_limited: bool,
    /// How long a Pending-First-Update flag may coalesce queries before a
    /// retry is pushed. Guards against responses lost to churn; the paper
    /// assumes reliable channels, so this only matters under failure
    /// injection.
    pub pfu_timeout: SimDuration,
    /// §3.6 overhead reduction: with many replicas per key, the authority
    /// may "selectively choose to propagate a subset of the replica
    /// refreshes and suppress others". A value of `k` propagates every
    /// k-th refresh per key; 1 propagates all (the paper's base
    /// behaviour).
    pub refresh_keep_one_in: u32,
    /// §3.6 overhead reduction: the authority may "aggregate replica
    /// refreshes ... batch all updates that arrive within that time and
    /// propagate them together as one update". `Some(window)` enables
    /// batching with that threshold ("a function of the lifetime of a
    /// replica"); `None` disables it.
    pub refresh_batch_window: Option<SimDuration>,
}

impl NodeConfig {
    /// Full-capacity CUP with the paper's best policy (second-chance).
    pub fn cup_default() -> Self {
        NodeConfig {
            mode: Mode::Cup,
            policies: PropagationPolicy::uniform(CutoffPolicy::second_chance()),
            reset_mode: ResetMode::ReplicaIndependent,
            capacity_limited: false,
            pfu_timeout: SimDuration::from_secs(30),
            refresh_keep_one_in: 1,
            refresh_batch_window: None,
        }
    }

    /// The standard-caching baseline.
    pub fn standard_caching() -> Self {
        NodeConfig {
            mode: Mode::StandardCaching,
            policies: PropagationPolicy::uniform(CutoffPolicy::Never),
            ..NodeConfig::cup_default()
        }
    }

    /// CUP with one cut-off policy for every key.
    pub fn cup_with_policy(policy: CutoffPolicy) -> Self {
        NodeConfig {
            policies: PropagationPolicy::uniform(policy),
            ..NodeConfig::cup_default()
        }
    }

    /// CUP with a per-key-class policy table.
    pub fn cup_with_policies(policies: PropagationPolicy) -> Self {
        NodeConfig {
            policies,
            ..NodeConfig::cup_default()
        }
    }
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig::cup_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use cup_des::KeyId;

    #[test]
    fn defaults_are_cup_second_chance() {
        let c = NodeConfig::default();
        assert_eq!(c.mode, Mode::Cup);
        assert_eq!(
            c.policies,
            PropagationPolicy::uniform(CutoffPolicy::second_chance())
        );
        assert_eq!(c.reset_mode, ResetMode::ReplicaIndependent);
        assert!(!c.capacity_limited);
    }

    #[test]
    fn baseline_never_receives_updates() {
        let c = NodeConfig::standard_caching();
        assert_eq!(c.mode, Mode::StandardCaching);
        assert_eq!(c.policies, PropagationPolicy::uniform(CutoffPolicy::Never));
    }

    #[test]
    fn with_policy_overrides_policy_only() {
        let c = NodeConfig::cup_with_policy(CutoffPolicy::Linear { alpha: 0.1 });
        assert_eq!(c.mode, Mode::Cup);
        assert_eq!(
            c.policies.policy_for(KeyId(9)),
            CutoffPolicy::Linear { alpha: 0.1 }
        );
    }

    #[test]
    fn per_class_tables_reach_the_node_config() {
        let table =
            PropagationPolicy::per_class(&[CutoffPolicy::Always, CutoffPolicy::second_chance()]);
        let c = NodeConfig::cup_with_policies(table);
        assert_eq!(c.mode, Mode::Cup);
        assert_eq!(c.policies.policy_for(KeyId(0)), CutoffPolicy::Always);
        assert_eq!(
            c.policies.policy_for(KeyId(1)),
            CutoffPolicy::second_chance()
        );
    }
}
