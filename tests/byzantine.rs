//! Byzantine behavior faults versus the rate-limited sampled cache
//! audit, pinned against deletion ground truth (DES only — the
//! sim-vs-live half of this plane lives in `tests/conformance.rs`).
//!
//! The attack: `stale-serve` nodes swallow deletion updates and keep
//! serving their cached entries, so the clients downstream of them
//! receive answers naming replicas the workload already killed. The
//! simulator records every replica death as ground truth and charges a
//! *poisoned answer* whenever a client response contains a dead replica.
//!
//! The defense: caching nodes poll a small deterministic sample of the
//! population after serving fresh hits (LOCKSS-style opinion polls,
//! rate-limited per key), and evict-and-refetch when a polled node's
//! tombstones condemn an entry they still serve. These suites pin the
//! economics the defense must honor:
//!
//! * with the audit **off**, the attack bites (north of 1% of all
//!   client answers are poisoned) and nothing ever repairs — poison
//!   only ages out through entry-freshness expiry;
//! * with the audit **on**, repairs fire, poison falls by more than
//!   half, and the surviving rate sits under 1% of client responses —
//!   the floor being answers the attackers serve from their own caches,
//!   which no cooperative defense can reach;
//! * the audit's own traffic is **bounded**: fewer hops than CUP's
//!   propagation saves against standard caching on the same workload —
//!   the defense never costs more than the protocol's reason to exist.

use cup::prelude::*;
use cup::simnet::sweeps::{audit_config_for, audit_grid_with, audit_point_specs};
use cup_testkit::scenario;

/// Four stale-serve attackers spread across a 64-node network serving a
/// hot 4-key catalog at 40 queries/s, with replica churn (mean life 500
/// s, shorter than the 1 000 s query window) so deletions land
/// mid-workload while caches are warm.
fn attacked_scenario(seed: u64) -> Scenario {
    let base = Scenario {
        replica_mean_life: Some(SimDuration::from_secs(500)),
        ..scenario(64, 4, 40.0, 1_000, seed)
    };
    Scenario {
        fault_plan: audit_point_specs(&base, 4),
        ..base
    }
}

/// The audited arm of the same scenario: the sweeps-default sampled
/// audit — poll 8 of the population per round, at most one round per
/// key per node every 30 logical seconds.
fn audited_config(scenario: Scenario) -> ExperimentConfig {
    let audit = audit_config_for(&scenario, 30);
    ExperimentConfig {
        node_config: NodeConfig::cup_default().with_audit(audit),
        ..ExperimentConfig::cup(scenario)
    }
}

#[test]
fn stale_serve_poisons_answers_and_audit_off_never_repairs() {
    let off = run_experiment(&ExperimentConfig::cup(attacked_scenario(11)));
    // The attack bites hard: over 1% of all client answers named dead
    // replicas, and the poison aged past the deletions that killed them.
    assert!(
        off.net.stale_answers > 0,
        "stale-serve never poisoned a client answer"
    );
    assert!(
        off.poisoned_rate() > 0.01,
        "unaudited poisoned rate {:.4} should exceed 1% — the attack must bite",
        off.poisoned_rate()
    );
    assert!(off.net.stale_age_micros > 0, "poison must age past death");
    assert!(
        off.net.faults.byz_updates_swallowed > 0,
        "no deletion was ever swallowed"
    );
    // Without the audit there is no detection and no recovery path —
    // and no audit spend either.
    assert_eq!(off.nodes.audits_started, 0, "audit-off must not audit");
    assert_eq!(off.audit_repairs(), 0, "audit-off must not repair");
    assert_eq!(off.audit_overhead(), 0, "audit-off must not spend hops");
}

#[test]
fn audit_on_caps_the_poisoned_rate_below_one_percent() {
    let off = run_experiment(&ExperimentConfig::cup(attacked_scenario(11)));
    let on = run_experiment(&audited_config(attacked_scenario(11)));
    // The defense actually ran: rounds opened, probes answered, and the
    // tombstone quorum condemned served-while-dead entries.
    assert!(on.nodes.audits_started > 0, "no audit round opened");
    assert!(on.nodes.audit_replies > 0, "no audit reply processed");
    assert!(on.audit_repairs() > 0, "the audit never repaired a cache");
    // It worked: poison falls by more than half, and the surviving rate
    // sits under 1% of client responses.
    assert!(
        on.net.stale_answers * 2 < off.net.stale_answers,
        "the audit must at least halve the poison ({} vs {})",
        on.net.stale_answers,
        off.net.stale_answers
    );
    assert!(
        on.poisoned_rate() < 0.01,
        "audited poisoned rate {:.4} must stay under 1%",
        on.poisoned_rate()
    );
    // Repairs shorten how long poison lingers: the detection-latency
    // proxy (mean poisoned-answer age) must improve too.
    assert!(
        on.recovery_latency_secs() < off.recovery_latency_secs(),
        "repairs must shorten poison dwell time ({:.1}s vs {:.1}s)",
        on.recovery_latency_secs(),
        off.recovery_latency_secs()
    );
}

#[test]
fn audit_overhead_stays_below_cups_update_savings() {
    let on = run_experiment(&audited_config(attacked_scenario(11)));
    // CUP's reason to exist on this workload: the hops its propagation
    // saves against standard caching (fault-free arms, same seed).
    let clean = Scenario {
        fault_plan: Vec::new(),
        ..attacked_scenario(11)
    };
    let standard = run_experiment(&ExperimentConfig::standard_caching(clean.clone()));
    let cup = run_experiment(&ExperimentConfig::cup(clean));
    let savings = standard
        .total_cost()
        .checked_sub(cup.total_cost())
        .expect("CUP beats standard caching on this workload");
    assert!(savings > 0, "no savings to compare the audit bill against");
    assert!(
        on.audit_overhead() < savings,
        "audit bill {} must stay below CUP's savings {}",
        on.audit_overhead(),
        savings
    );
    // And it stays a small fraction of the paper's §3.3 total cost.
    assert!(
        on.audit_overhead_ratio() < 0.25,
        "audit overhead ratio {:.3} must stay modest",
        on.audit_overhead_ratio()
    );
}

#[test]
fn audit_grid_rows_are_consistent_with_the_single_runs() {
    // The grid behind BENCH_audit.json tells the same story — and its
    // attacked/audited row is the *same experiment* as the single runs
    // above (same scenario, same derived audit config), so the numbers
    // must agree exactly across the two drivers.
    let clean_base = Scenario {
        fault_plan: Vec::new(),
        ..attacked_scenario(11)
    };
    let grid = audit_grid_with(&clean_base, &[0, 4], 30, 2);
    assert_eq!(grid.len(), 4);
    let (calm_off, calm_on, hot_off, hot_on) = (&grid[0], &grid[1], &grid[2], &grid[3]);
    assert_eq!((calm_off.attackers, hot_off.attackers), (0, 4));
    // No attacker, no poison — audited or not.
    assert_eq!(calm_off.poisoned, 0);
    assert_eq!(calm_on.poisoned, 0);
    // Attacked: the audit repairs and strictly reduces poison.
    assert!(hot_off.poisoned > 0, "the attacked row must be poisoned");
    assert_eq!(hot_off.repairs, 0);
    assert!(hot_on.repairs > 0);
    assert!(hot_on.poisoned < hot_off.poisoned);
    assert!(hot_on.poisoned_rate < 0.01);
    // Cross-check against the single runs, byte for byte.
    let off = run_experiment(&ExperimentConfig::cup(attacked_scenario(11)));
    let on = run_experiment(&audited_config(attacked_scenario(11)));
    assert_eq!(hot_off.poisoned, off.net.stale_answers);
    assert_eq!(hot_on.poisoned, on.net.stale_answers);
    assert_eq!(hot_on.repairs, on.audit_repairs());
    assert_eq!(hot_on.audit_hops, on.audit_overhead());
}
