//! Complete experiment configurations.
//!
//! A [`Scenario`] captures every §3.2 simulation input. The default values
//! are the paper's base configuration: 2¹⁰ nodes, 300 s entry lifetime,
//! 22 000 s simulation with a 3 000 s query window, one replica per key.

use cup_des::{SimDuration, SimTime};

/// Which key-popularity distribution the queries follow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// All keys equally popular.
    Uniform,
    /// Zipf with the given exponent.
    Zipf {
        /// Zipf exponent (0 = uniform, ~1 = classic web-like skew).
        exponent: f64,
    },
}

/// Every knob of one simulated experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of overlay nodes.
    pub nodes: usize,
    /// Number of distinct keys in the workload.
    pub keys: u32,
    /// Replicas serving each key (Table 3 varies this from 1 to 100).
    pub replicas_per_key: u32,
    /// Index entry lifetime; replicas refresh at expiration (paper: 300 s).
    pub entry_lifetime: SimDuration,
    /// Network-wide query arrival rate, queries per second (paper: 1 to
    /// 1000).
    pub query_rate: f64,
    /// When queries start (after the replica population warm-up).
    pub query_start: SimTime,
    /// When queries stop (paper: 3 000 s of querying).
    pub query_end: SimTime,
    /// Total simulated time (paper: 22 000 s).
    pub sim_end: SimTime,
    /// Key popularity distribution.
    pub key_distribution: KeyDistribution,
    /// Mean replica lifetime before an explicit death, or `None` for
    /// replicas that serve for the whole run (the paper's evaluation has
    /// no replica deaths; deletes are exercised by tests and examples).
    pub replica_mean_life: Option<SimDuration>,
    /// Queries per flash-crowd burst; 1 means independent queries. Bursts
    /// model the "suddenly hot" keys of §1/§3.2 (favorable conditions).
    pub burst_size: u32,
    /// Time window one burst's queries are spread over.
    pub burst_spread: SimDuration,
    /// Cut-off policy assignment by key class, as stable policy *names*
    /// (`cup_core::CutoffPolicy::parse`): key k runs
    /// `policy_classes[k % len]`. Empty (the default) leaves the node
    /// configuration's policy table in charge. Names keep this crate free
    /// of a protocol dependency while letting workloads describe
    /// mixed-policy populations.
    pub policy_classes: Vec<String>,
    /// Fault-plane script, as fault spec *strings*
    /// (`cup_faults::FaultPlan::parse_specs`): `drop:0.05`,
    /// `drop:0.2@t=100..400`, `spike:3@t=50..80`, `crash:17@t=50..90`,
    /// `partition:2@t=30..60`. Empty (the default) runs loss-free and
    /// crash-free. Strings keep this crate free of a fault-plane
    /// dependency, exactly like [`Scenario::policy_classes`].
    pub fault_plan: Vec<String>,
    /// Master random seed.
    pub seed: u64,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            nodes: 1 << 10,
            keys: 100,
            replicas_per_key: 1,
            entry_lifetime: SimDuration::from_secs(300),
            query_rate: 1.0,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(3_300),
            sim_end: SimTime::from_secs(22_000),
            key_distribution: KeyDistribution::Uniform,
            replica_mean_life: None,
            burst_size: 1,
            burst_spread: SimDuration::from_secs(2),
            policy_classes: Vec::new(),
            fault_plan: Vec::new(),
            seed: 0xC0FFEE,
        }
    }
}

impl Scenario {
    /// A large-population scenario (the 10k–100k node regime).
    ///
    /// The paper evaluates up to 2¹² nodes; this family extrapolates its
    /// base configuration to 10k–100k populations under the paper's
    /// *favorable conditions* (§1, §3.2): flash crowds of 20 queries for
    /// a suddenly-hot key, with key popularity Zipf-distributed
    /// (exponent 0.9, the classic heavy-tailed web workload) over a hot
    /// catalog that scales with the *query budget* (one key per 1250
    /// expected queries, clamped to [4, 4096]) rather than the
    /// population — that keeps per-key arrival rates inside the regime
    /// the paper evaluates, however many nodes the index is spread over.
    /// `queries` sets the expected total query count; the window is the
    /// base 1000 s, so the arrival rate scales with the budget. Replica
    /// warm-up and drain margins keep the base shape (300 s warm-up,
    /// 700 s tail).
    ///
    /// Measured trade-off at this scale (see `tests/large_scale.rs`):
    /// CUP roughly halves the miss cost at every population, and wins on
    /// total cost through ~10k nodes; at 100k nodes a 10k-query budget
    /// gives each cached entry too little reuse for maintenance to pay
    /// for itself in full, so the total-cost ratio drifts slightly above
    /// one while miss latency stays halved.
    pub fn large_scale(nodes: usize, queries: u64, seed: u64) -> Self {
        let window_secs = 1_000u64;
        let query_start = SimTime::from_secs(300);
        let query_end = SimTime::from_secs(300 + window_secs);
        Scenario {
            nodes,
            keys: ((queries / 1_250).clamp(4, 4_096)) as u32,
            query_rate: queries as f64 / window_secs as f64,
            query_start,
            query_end,
            sim_end: query_end + SimDuration::from_secs(700),
            key_distribution: KeyDistribution::Zipf { exponent: 0.9 },
            burst_size: 20,
            seed,
            ..Scenario::default()
        }
    }

    /// Assigns cut-off policies by key class (policy *names*; see
    /// [`Scenario::policy_classes`]).
    pub fn with_policy_classes(mut self, names: &[&str]) -> Self {
        self.policy_classes = names.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// Attaches a fault-plane script (fault spec *strings*; see
    /// [`Scenario::fault_plan`]).
    pub fn with_fault_plan(mut self, specs: &[&str]) -> Self {
        self.fault_plan = specs.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// Length of the query window.
    pub fn query_window(&self) -> SimDuration {
        self.query_end.saturating_since(self.query_start)
    }

    /// Expected number of queries posted.
    pub fn expected_queries(&self) -> f64 {
        self.query_rate * self.query_window().as_secs_f64()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("scenario needs at least one node".into());
        }
        if self.keys == 0 {
            return Err("scenario needs at least one key".into());
        }
        if self.query_rate <= 0.0 || !self.query_rate.is_finite() {
            return Err(format!(
                "query rate must be positive, got {}",
                self.query_rate
            ));
        }
        if self.query_start >= self.query_end {
            return Err("query window is empty".into());
        }
        if self.query_end > self.sim_end {
            return Err("query window extends past the simulation end".into());
        }
        if self.entry_lifetime == SimDuration::ZERO {
            return Err("entry lifetime must be positive".into());
        }
        if self.burst_size == 0 {
            return Err("burst size must be at least 1".into());
        }
        if self.policy_classes.iter().any(|s| s.trim().is_empty()) {
            return Err("policy class names must be non-empty".into());
        }
        if self.fault_plan.iter().any(|s| s.trim().is_empty()) {
            return Err("fault plan specs must be non-empty".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_base_config() {
        let s = Scenario::default();
        assert_eq!(s.nodes, 1024);
        assert_eq!(s.entry_lifetime, SimDuration::from_secs(300));
        assert_eq!(s.query_window(), SimDuration::from_secs(3_000));
        assert_eq!(s.expected_queries(), 3_000.0);
        s.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let s = Scenario {
            nodes: 0,
            ..Scenario::default()
        };
        assert!(s.validate().is_err());

        let s = Scenario {
            query_rate: 0.0,
            ..Scenario::default()
        };
        assert!(s.validate().is_err());

        let base = Scenario::default();
        let s = Scenario {
            query_end: base.query_start,
            ..base
        };
        assert!(s.validate().is_err());

        let s = Scenario {
            sim_end: SimTime::from_secs(100),
            ..Scenario::default()
        };
        assert!(s.validate().is_err());

        let s = Scenario {
            burst_size: 0,
            ..Scenario::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn large_scale_family_scales_keys_and_rate() {
        let s = Scenario::large_scale(100_000, 10_000, 1);
        s.validate().unwrap();
        assert_eq!(s.nodes, 100_000);
        assert_eq!(s.keys, 8);
        assert_eq!(s.expected_queries(), 10_000.0);
        assert_eq!(s.burst_size, 20, "flash-crowd conditions");
        assert!(matches!(
            s.key_distribution,
            KeyDistribution::Zipf { exponent } if exponent == 0.9
        ));
        // Small query budgets clamp to a sane floor.
        let tiny = Scenario::large_scale(100, 1_000, 2);
        tiny.validate().unwrap();
        assert_eq!(tiny.keys, 4);
    }

    #[test]
    fn policy_classes_ride_along() {
        let s = Scenario::default().with_policy_classes(&["second-chance", "always"]);
        s.validate().unwrap();
        assert_eq!(s.policy_classes, vec!["second-chance", "always"]);
        assert_ne!(s, Scenario::default());
        let bad = Scenario::default().with_policy_classes(&["  "]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fault_plans_ride_along() {
        let s = Scenario::default().with_fault_plan(&["drop:0.05", "crash:3@t=50..90"]);
        s.validate().unwrap();
        assert_eq!(s.fault_plan, vec!["drop:0.05", "crash:3@t=50..90"]);
        assert_ne!(s, Scenario::default());
        let bad = Scenario::default().with_fault_plan(&[" "]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn scenario_is_cloneable_and_comparable() {
        let s = Scenario {
            replica_mean_life: Some(SimDuration::from_secs(500)),
            key_distribution: KeyDistribution::Zipf { exponent: 0.8 },
            ..Scenario::default()
        };
        let t = s.clone();
        assert_eq!(s, t);
        assert_ne!(
            t,
            Scenario::default(),
            "overrides must show up in comparisons"
        );
    }
}
