//! The large-population suite: 10k–100k node experiments.
//!
//! This is the regime the calendar-queue scheduler, the node arena, and
//! the overlay spatial indices exist for. The suite locks down the two
//! properties every scaling PR must preserve:
//!
//! * **determinism** — byte-identical [`ExperimentResult`]s per seed,
//!   even at 100k nodes (`assert_deterministic` runs everything twice);
//! * **tractability** — the flagship 100k-node, 10k-query scenario has a
//!   hard wall-clock budget, so a scheduler regression fails loudly
//!   instead of silently rotting the benches.

use std::time::{Duration, Instant};

use cup::prelude::*;
use cup_testkit::{assert_deterministic, large_scale, large_scale_churn_config};

/// CUP must still beat standard caching in the heavy-tailed large-scale
/// regime (the paper's claim extrapolated past its 2¹² ceiling).
#[test]
fn cup_beats_standard_caching_at_10k_nodes() {
    let scenario = large_scale(10_000, 10_000, 71);
    let std = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
    let cup = run_experiment(&ExperimentConfig::cup(scenario));
    assert!(
        cup.total_cost() < std.total_cost(),
        "CUP {} must beat standard caching {} at 10k nodes",
        cup.total_cost(),
        std.total_cost()
    );
    assert!(cup.nodes.client_queries > 9_000, "query budget delivered");
}

/// Determinism at 10k nodes with the Zipf workload.
#[test]
fn large_scale_10k_is_deterministic() {
    let result = assert_deterministic(&ExperimentConfig::cup(large_scale(10_000, 10_000, 72)));
    assert!(result.events > 100_000, "a real event volume was simulated");
    assert_eq!(result.node_count, 10_000);
}

/// The flagship scale: 100k nodes, 10k queries, deterministic, and —
/// run twice by `assert_deterministic` — each run inside the wall-clock
/// budget. The release budget is 60 s; the tier-1 (opt-level 2, debug
/// assertions) budget is proportionally wider.
#[test]
fn large_scale_100k_is_deterministic_within_budget() {
    let budget = if cfg!(debug_assertions) {
        Duration::from_secs(180)
    } else {
        Duration::from_secs(60)
    };
    let config = ExperimentConfig::cup(large_scale(100_000, 10_000, 73));
    let start = Instant::now();
    let result = assert_deterministic(&config);
    let per_run = start.elapsed() / 2;
    assert!(
        per_run < budget,
        "100k-node run took {per_run:?}, budget {budget:?}"
    );
    assert_eq!(result.node_count, 100_000);
    assert!(result.nodes.client_queries > 9_000);
    assert!(result.total_cost() > 0);
}

/// Churn at scale: joins and leaves through the query window must keep
/// the experiment deterministic and the network serving queries.
#[test]
fn large_scale_churn_is_deterministic() {
    let config = large_scale_churn_config(10_000, 5_000, 50, 74);
    assert!(!config.churn.is_empty(), "schedule must carry churn events");
    let result = assert_deterministic(&config);
    assert!(result.nodes.client_queries > 4_000);
    assert!(result.total_cost() > 0);
}
