//! The runtime clock: where a live runtime's "now" comes from.
//!
//! The protocol state machine ([`crate::node::CupNode`]) is stamped with
//! [`SimTime`]s by whatever drives it. The DES owns its clock outright —
//! "now" is the head of the event queue — but a threaded runtime needs a
//! source, and there are two:
//!
//! * **wall-mapped** ([`Clock::wall`]) — microseconds elapsed since the
//!   clock was created, mapped onto [`SimTime`]. Real time for real
//!   deployments and throughput benchmarks; inherently nondeterministic.
//! * **virtual** ([`Clock::virtual_at`]) — a logical time that only
//!   moves when the driver says so ([`Clock::advance_to`]). Stepped at
//!   quiesce barriers, every worker thread observes byte-identical
//!   timestamps regardless of scheduling, which is what lets the live
//!   runtime agree with the DES on *time-compared* behavior
//!   (`pfu_timeout` retries, `@t=`-windowed fault scripts).
//!
//! This module is the workspace's **single designated wall-clock
//! module**: `std::time::Instant` may be touched here and nowhere else
//! in the protocol crates (`cup-core`, `cup-runtime`). CI and
//! `tests/wall_clock_lint.rs` enforce the ban, so wall time can never
//! leak back into protocol logic.

// The one sanctioned escape from clippy.toml's disallowed-methods wall:
// this module *implements* the clock abstraction everything else is
// required to use.
#![allow(clippy::disallowed_methods)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cup_des::{SimDuration, SimTime};

/// A monotone source of [`SimTime`] shared by every thread of a live
/// runtime. See the module docs for the two modes.
#[derive(Debug)]
pub struct Clock(Inner);

#[derive(Debug)]
enum Inner {
    /// Wall time since `start`, mapped onto `SimTime` microseconds.
    Wall(Instant),
    /// Logical microseconds, moved only by [`Clock::advance_to`].
    Virtual(AtomicU64),
}

impl Clock {
    /// A wall-mapped clock starting at `SimTime::ZERO` now.
    pub fn wall() -> Self {
        Clock(Inner::Wall(Instant::now()))
    }

    /// A virtual clock frozen at `start` until advanced.
    pub fn virtual_at(start: SimTime) -> Self {
        Clock(Inner::Virtual(AtomicU64::new(start.as_micros())))
    }

    /// `true` for a virtual clock (time moves only on
    /// [`Clock::advance_to`]).
    pub fn is_virtual(&self) -> bool {
        matches!(self.0, Inner::Virtual(_))
    }

    /// The current time. On the hot path of every dispatched message:
    /// a virtual read is one relaxed atomic load (the runtime's quiesce
    /// barrier provides the ordering between an advance and the traffic
    /// that observes it).
    pub fn now(&self) -> SimTime {
        match &self.0 {
            Inner::Wall(start) => SimTime::from_micros(start.elapsed().as_micros() as u64),
            Inner::Virtual(now) => SimTime::from_micros(now.load(Ordering::Relaxed)),
        }
    }

    /// Moves a virtual clock forward to `target` and returns it.
    /// `target == now` is a no-op (re-synchronizing at a barrier is
    /// legal); moving backwards is a bug and panics.
    ///
    /// # Panics
    ///
    /// Panics on a wall-mapped clock (real time cannot be steered) and
    /// if `target` is in the logical past.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let Inner::Virtual(now) = &self.0 else {
            panic!("advance_to on a wall-mapped clock: only virtual time can be steered");
        };
        let current = now.load(Ordering::Relaxed);
        assert!(
            target.as_micros() >= current,
            "virtual time must be monotone: advance_to({target}) from {}",
            SimTime::from_micros(current)
        );
        now.store(target.as_micros(), Ordering::SeqCst);
        target
    }

    /// Moves a virtual clock forward by `by` and returns the new time.
    ///
    /// # Panics
    ///
    /// Panics on a wall-mapped clock.
    pub fn advance(&self, by: SimDuration) -> SimTime {
        self.advance_to(self.now() + by)
    }
}

impl Default for Clock {
    /// The default is the wall-mapped clock: real deployments should
    /// not opt *out* of real time by accident.
    fn default() -> Self {
        Clock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_moves_only_when_advanced() {
        let clock = Clock::virtual_at(SimTime::ZERO);
        assert!(clock.is_virtual());
        assert_eq!(clock.now(), SimTime::ZERO);
        assert_eq!(clock.now(), SimTime::ZERO, "time is frozen");
        assert_eq!(
            clock.advance(SimDuration::from_secs(30)),
            SimTime::from_secs(30)
        );
        assert_eq!(clock.now(), SimTime::from_secs(30));
        assert_eq!(
            clock.advance_to(SimTime::from_secs(31)),
            SimTime::from_secs(31)
        );
    }

    #[test]
    fn virtual_clock_can_start_anywhere() {
        let clock = Clock::virtual_at(SimTime::from_secs(100));
        assert_eq!(clock.now(), SimTime::from_secs(100));
    }

    #[test]
    fn advancing_to_the_current_instant_is_a_no_op() {
        let clock = Clock::virtual_at(SimTime::from_secs(5));
        assert_eq!(
            clock.advance_to(SimTime::from_secs(5)),
            SimTime::from_secs(5)
        );
        assert_eq!(clock.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn virtual_clock_rejects_backwards_time() {
        let clock = Clock::virtual_at(SimTime::from_secs(10));
        clock.advance_to(SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "wall-mapped")]
    fn wall_clock_cannot_be_steered() {
        Clock::wall().advance(SimDuration::from_secs(1));
    }

    #[test]
    fn wall_clock_is_monotone_and_default() {
        let clock = Clock::default();
        assert!(!clock.is_virtual());
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
