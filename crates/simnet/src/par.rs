//! A tiny deterministic fork-join helper for embarrassingly parallel
//! sweeps.
//!
//! Every grid point of a parameter sweep is an independent, fully
//! deterministic DES run, so the only thing a parallel sweep must
//! guarantee is *stable output ordering*: [`parallel_map`] returns
//! results in input order no matter how the work was scheduled, which is
//! what keeps the `repro` golden snapshot byte-identical between the
//! serial and parallel paths.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default sweep worker count: the machine's available parallelism
/// (1 if unknown).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Maps `f` over `items` on up to `workers` threads, returning results
/// in input order.
///
/// Work is claimed through an atomic cursor (cheap work stealing, so a
/// slow grid point never idles the other workers), and each result lands
/// in its input slot — scheduling cannot reorder the output. `workers`
/// is clamped to `1..=items.len()`; one worker degenerates to a plain
/// serial map with no threads spawned.
///
/// # Panics
///
/// Propagates a panicking `f` (the scope join rethrows it).
pub fn parallel_map<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot is filled once the scope joins")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 4, 7] {
            let out = parallel_map(&items, workers, |&x| x * x);
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expected, "{workers} workers");
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, 8, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41u32], 8, |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_count_exceeding_items_is_clamped() {
        let items: Vec<usize> = (0..3).collect();
        assert_eq!(parallel_map(&items, 64, |&x| x), items);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
