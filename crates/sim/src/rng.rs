//! Deterministic random number generation.
//!
//! Experiments must be exactly reproducible from a seed, across platforms
//! and across versions of external crates. We therefore implement a small,
//! well-known generator (xoshiro256** seeded via SplitMix64) rather than
//! relying on an external crate's unspecified algorithm; [`DetRng`] ships
//! the uniform/exponential/shuffle helpers the workloads need.

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use cup_des::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next(), b.next());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// Advances a SplitMix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four words of internal state are derived with SplitMix64, the
    /// initialization recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator for a labelled subsystem.
    ///
    /// Deriving streams (instead of sharing one generator) keeps, e.g., the
    /// query workload identical whether or not the churn generator also
    /// draws random numbers.
    pub fn derive(&self, label: u64) -> DetRng {
        // Mix the label into a fresh SplitMix64 stream keyed by our state.
        let mut sm = self.s[0]
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(label ^ 0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Returns the next value of the xoshiro256** sequence.
    ///
    /// Deliberately named like the generator literature's `next()`; this
    /// type is not an iterator (an RNG never ends).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits mapped onto the unit interval.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns an exponentially distributed value with the given rate
    /// parameter, i.e. mean `1 / rate` (used for Poisson inter-arrivals).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        // Avoid ln(0) by flipping the uniform sample to (0, 1].
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniformly chosen element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn choose_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..len` (uniformly, without
    /// replacement). If `k >= len`, returns all indices shuffled.
    pub fn sample_indices(&mut self, len: usize, k: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..len).collect();
        self.shuffle(&mut all);
        all.truncate(k.min(len));
        all
    }

    /// Fills a byte slice with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(8);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let root = DetRng::seed_from(1);
        let mut a1 = root.derive(10);
        let mut a2 = root.derive(10);
        let mut b = root.derive(11);
        assert_eq!(a1.next(), a2.next());
        assert_ne!(a1.next(), b.next());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = DetRng::seed_from(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn next_exp_has_right_mean() {
        let mut rng = DetRng::seed_from(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} should be near 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = DetRng::seed_from(9);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = DetRng::seed_from(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::seed_from(1).next_below(0);
    }
}
