//! Multiple replicas per key (§3.6): the naive cut-off pathology and the
//! replica-independent fix.

use cup::prelude::*;

fn scenario(replicas: u32) -> Scenario {
    Scenario {
        replicas_per_key: replicas,
        ..cup_testkit::scenario(128, 4, 5.0, 1_500, 808)
    }
}

fn run_with_reset(replicas: u32, mode: ResetMode) -> ExperimentResult {
    let mut config = ExperimentConfig::cup(scenario(replicas));
    config.node_config.reset_mode = mode;
    run_experiment(&config)
}

#[test]
fn naive_cutoff_wastes_subscriptions_with_many_replicas() {
    // Table 3, column 2: with the naive reset, more replicas means more
    // cut-offs and therefore more misses.
    let naive = run_with_reset(8, ResetMode::Naive);
    let fixed = run_with_reset(8, ResetMode::ReplicaIndependent);
    assert!(
        fixed.misses() <= naive.misses(),
        "fix must not miss more: naive {} vs fixed {}",
        naive.misses(),
        fixed.misses()
    );
    assert!(
        naive.nodes.cutoffs > fixed.nodes.cutoffs,
        "naive reset must cut off more aggressively: {} vs {}",
        naive.nodes.cutoffs,
        fixed.nodes.cutoffs
    );
}

#[test]
fn replica_independent_cutoff_is_insensitive_to_replica_count() {
    // Table 3, column 3: with the fix, the miss cost stays flat (or
    // improves) as replicas are added.
    let one = run_with_reset(1, ResetMode::ReplicaIndependent);
    let many = run_with_reset(8, ResetMode::ReplicaIndependent);
    assert!(
        (many.misses() as f64) < one.misses() as f64 * 1.3,
        "fix keeps misses stable: 1 replica {} vs 8 replicas {}",
        one.misses(),
        many.misses()
    );
}

#[test]
fn more_replicas_mean_more_update_traffic() {
    // Table 3, last column: per-replica refreshes make the total cost
    // grow with the replica count.
    let one = run_with_reset(1, ResetMode::ReplicaIndependent);
    let many = run_with_reset(8, ResetMode::ReplicaIndependent);
    assert!(
        many.overhead() > one.overhead(),
        "8 replicas push more updates: {} vs {}",
        many.overhead(),
        one.overhead()
    );
}

#[test]
fn appends_flow_when_replicas_join_mid_run() {
    // Births are staggered across the first entry lifetime; starting the
    // query window inside that stagger means later births find subscribed
    // neighbors and propagate as append updates.
    let mut s = scenario(8);
    s.query_start = SimTime::from_secs(50);
    let result = run_experiment(&ExperimentConfig::cup(s));
    assert!(
        result.net.append_hops > 0,
        "births must propagate as appends"
    );
}

#[test]
fn replica_deaths_propagate_deletes() {
    let mut s = scenario(4);
    s.replica_mean_life = Some(SimDuration::from_secs(400));
    let result = run_experiment(&ExperimentConfig::cup(s));
    assert!(
        result.net.delete_hops > 0,
        "replica deaths must propagate delete updates"
    );
}

#[test]
fn refresh_subsetting_cuts_overhead_without_extra_misses_blowup() {
    // §3.6: "the authority node can selectively choose to propagate a
    // subset of the replica refreshes and suppress others" to reduce the
    // many-replica overhead. Ablation: keep one refresh in two.
    let base = run_with_reset(8, ResetMode::ReplicaIndependent);
    let mut subset_config = ExperimentConfig::cup(scenario(8));
    subset_config.node_config.refresh_keep_one_in = 2;
    let subset = run_experiment(&subset_config);
    assert!(
        subset.net.refresh_hops < base.net.refresh_hops,
        "suppression must cut refresh traffic: {} vs {}",
        subset.net.refresh_hops,
        base.net.refresh_hops
    );
    assert!(
        subset.misses() < base.misses() * 3,
        "suppression must not explode misses: {} vs {}",
        subset.misses(),
        base.misses()
    );
}

#[test]
fn refresh_batching_cuts_update_transmissions() {
    // §3.6: batching refreshes that arrive within a threshold "as one
    // update" reduces per-replica overhead.
    let base = run_with_reset(8, ResetMode::ReplicaIndependent);
    let mut batched_config = ExperimentConfig::cup(scenario(8));
    batched_config.node_config.refresh_batch_window = Some(SimDuration::from_secs(30));
    let batched = run_experiment(&batched_config);
    assert!(
        batched.net.refresh_hops < base.net.refresh_hops,
        "batching must cut refresh transmissions: {} vs {}",
        batched.net.refresh_hops,
        base.net.refresh_hops
    );
}

#[test]
fn answers_carry_multiple_replicas() {
    // With several live replicas, responses eventually carry several
    // entries; we verify via the live runtime where answers are visible.
    let mut rng = DetRng::seed_from(5);
    let net =
        LiveNetwork::start(OverlayKind::Can, 16, NodeConfig::cup_default(), &mut rng).unwrap();
    for r in 0..3 {
        net.replica_birth(KeyId(1), ReplicaId(r), SimDuration::from_secs(60));
    }
    net.quiesce();
    let entries = net.query(net.nodes()[5], KeyId(1)).unwrap();
    assert_eq!(entries.len(), 3, "the answer must list all three replicas");
    net.shutdown();
}
