//! The [`Strategy`] trait and the built-in strategies the suites use.

use core::marker::PhantomData;
use core::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of one type from the deterministic [`TestRng`].
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value for the current case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, proptest's `prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit() * (self.end - self.start);
        // Guard the upper bound against rounding in the multiply-add.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy, proptest's `Arbitrary`.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! unsigned_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

unsigned_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T`, proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
