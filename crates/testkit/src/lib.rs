//! Shared scenario presets and assertions for the CUP test suites.
//!
//! Every integration suite runs full experiments over the same scenario
//! *shape* — a 300 s replica warm-up, a query window, and a simulated
//! tail for drain — varying only size, rate, and seed. [`scenario`]
//! captures that shape once; the `preset` free functions name the sizes
//! the suites use.
//!
//! The two assertion families encode the workspace's ground rules:
//!
//! * [`assert_deterministic`] — same config ⇒ byte-identical
//!   [`ExperimentResult`], the invariant everything else (sweeps,
//!   benches, regression claims) rests on;
//! * [`assert_cheaper`] / [`run_cup_and_standard`] — the paper's
//!   cost-model comparisons with readable failure messages.
//!
//! The [`conformance`] module is the sim-vs-live harness: it scripts one
//! workload through both the DES and the worker-pool live runtime over
//! the same topology, for the root conformance suite to compare.

use cup::prelude::*;

pub mod conformance;

/// The §3.2 replica warm-up: queries never start before replicas have
/// had 300 simulated seconds to populate the index.
pub const WARMUP_SECS: u64 = 300;

/// Simulated tail past the query window, so in-flight traffic drains
/// before metrics are read (comfortably above the harness's default
/// 30 s drain margin).
pub const TAIL_SECS: u64 = 700;

/// Builds the common integration scenario shape.
///
/// Queries run from [`WARMUP_SECS`] for `query_secs`; the simulation
/// continues [`TAIL_SECS`] past the query window.
pub fn scenario(nodes: usize, keys: u32, query_rate: f64, query_secs: u64, seed: u64) -> Scenario {
    let query_start = SimTime::from_secs(WARMUP_SECS);
    let query_end = SimTime::from_secs(WARMUP_SECS + query_secs);
    Scenario {
        nodes,
        keys,
        query_rate,
        query_start,
        query_end,
        sim_end: query_end + SimDuration::from_secs(TAIL_SECS),
        seed,
        ..Scenario::default()
    }
}

/// A 64-node smoke-test scenario (seconds to run).
pub fn tiny(query_rate: f64, seed: u64) -> Scenario {
    scenario(64, 4, query_rate, 1_000, seed)
}

/// A 128-node scenario, the end-to-end suites' size.
pub fn small(query_rate: f64, seed: u64) -> Scenario {
    scenario(128, 4, query_rate, 1_000, seed)
}

/// A 256-node scenario, the comparison suites' size.
pub fn medium(query_rate: f64, seed: u64) -> Scenario {
    scenario(256, 4, query_rate, 1_500, seed)
}

/// A large-population scenario (10k–100k nodes, Zipf queries) with the
/// given total query budget — the scale regime the calendar-queue
/// scheduler and node arena exist for.
pub fn large_scale(nodes: usize, queries: u64, seed: u64) -> Scenario {
    Scenario::large_scale(nodes, queries, seed)
}

/// A churn-enabled large-scale experiment: joins and leaves alternate
/// through the query window (one event per `churn_period_secs`), leaves
/// graceful with probability one half.
pub fn large_scale_churn_config(
    nodes: usize,
    queries: u64,
    churn_period_secs: u64,
    seed: u64,
) -> ExperimentConfig {
    let scenario = Scenario::large_scale(nodes, queries, seed);
    let mut churn_rng = DetRng::seed_from(seed ^ 0x5CA1_AB1E);
    let churn = ChurnSchedule::alternating(
        scenario.query_start,
        scenario.query_end,
        SimDuration::from_secs(churn_period_secs),
        0.5,
        &mut churn_rng,
    );
    ExperimentConfig {
        churn,
        ..ExperimentConfig::cup(scenario)
    }
}

/// Runs `config` twice and asserts the results are identical, returning
/// the (now known-reproducible) result.
///
/// `ExperimentResult` is all integers, so equality is byte-exact: any
/// hidden nondeterminism (hash-map iteration order, time-of-day seeding,
/// unordered event ties) fails loudly here.
///
/// # Panics
///
/// Panics if the two runs differ anywhere in their metrics.
pub fn assert_deterministic(config: &ExperimentConfig) -> ExperimentResult {
    let first = run_experiment(config);
    let second = run_experiment(config);
    assert_eq!(
        first, second,
        "same seed must give byte-identical results (seed {})",
        config.scenario.seed
    );
    first
}

/// Asserts `cheaper` strictly beats `baseline` on total cost.
///
/// # Panics
///
/// Panics with both costs in the message if the comparison fails.
pub fn assert_cheaper(label: &str, cheaper: &ExperimentResult, baseline: &ExperimentResult) {
    assert!(
        cheaper.total_cost() < baseline.total_cost(),
        "{label}: total cost {} must beat baseline {}",
        cheaper.total_cost(),
        baseline.total_cost()
    );
}

/// Asserts `cheaper` does no worse than `baseline` on total cost.
///
/// # Panics
///
/// Panics with both costs in the message if the comparison fails.
pub fn assert_no_costlier(label: &str, cheaper: &ExperimentResult, baseline: &ExperimentResult) {
    assert!(
        cheaper.total_cost() <= baseline.total_cost(),
        "{label}: total cost {} must not exceed baseline {}",
        cheaper.total_cost(),
        baseline.total_cost()
    );
}

/// Runs the same scenario under CUP and under standard caching.
///
/// Returns `(cup, standard)` — the headline comparison almost every
/// suite draws, behind one call.
pub fn run_cup_and_standard(scenario: Scenario) -> (ExperimentResult, ExperimentResult) {
    let standard = run_experiment(&ExperimentConfig::standard_caching(scenario.clone()));
    let cup = run_experiment(&ExperimentConfig::cup(scenario));
    (cup, standard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shape_is_consistent() {
        let s = scenario(64, 4, 5.0, 1_000, 9);
        assert_eq!(s.query_start, SimTime::from_secs(300));
        assert_eq!(s.query_end, SimTime::from_secs(1_300));
        assert_eq!(s.sim_end, SimTime::from_secs(2_000));
        s.validate().unwrap();
        for preset in [tiny(5.0, 1), small(5.0, 1), medium(5.0, 1)] {
            preset.validate().unwrap();
        }
    }

    #[test]
    fn determinism_holds_on_a_smoke_scenario() {
        let result = assert_deterministic(&ExperimentConfig::cup(tiny(2.0, 5)));
        assert!(result.nodes.client_queries > 0);
    }

    #[test]
    #[should_panic(expected = "must beat baseline")]
    fn assert_cheaper_reports_costs() {
        let mut a = ExperimentResult::default();
        a.net.query_hops = 10;
        let b = ExperimentResult::default();
        assert_cheaper("inverted", &a, &b);
    }
}
