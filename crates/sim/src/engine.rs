//! The simulation driver.
//!
//! [`Engine`] owns the user's state and the event queue and repeatedly
//! dispatches the earliest event to a handler closure. The handler receives
//! mutable access to both the state and the queue so it can schedule
//! follow-up events.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A discrete-event simulation engine.
///
/// The engine is generic over the simulation state `S` and the event payload
/// `E`; the per-event logic is supplied as a closure to [`Engine::run`] or
/// [`Engine::run_until`], keeping this crate fully protocol-agnostic.
///
/// # Examples
///
/// ```
/// use cup_des::{Engine, SimDuration, SimTime};
///
/// let mut engine = Engine::new(0u64);
/// engine.schedule(SimTime::ZERO, 41u64);
/// engine.run(|sum, _queue, _now, ev| *sum += ev);
/// assert_eq!(*engine.state(), 41);
/// ```
#[derive(Debug)]
pub struct Engine<S, E> {
    state: S,
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<S, E> Engine<S, E> {
    /// Creates an engine around the given state with an empty queue and the
    /// clock at [`SimTime::ZERO`].
    pub fn new(state: S) -> Self {
        Engine {
            state,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an event on the engine's queue.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        self.queue.schedule(at, payload);
    }

    /// Returns the current simulated time (the firing time of the most
    /// recently dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Returns the number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Returns a shared reference to the simulation state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Returns a mutable reference to the simulation state.
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// Consumes the engine, returning the final state.
    pub fn into_state(self) -> S {
        self.state
    }

    /// Runs until the queue is empty.
    ///
    /// The handler receives `(state, queue, now, event)` and may schedule
    /// further events on `queue`.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E),
    {
        while let Some((at, ev)) = self.queue.pop() {
            debug_assert!(at >= self.now, "event queue went backwards in time");
            self.now = at;
            self.processed += 1;
            handler(&mut self.state, &mut self.queue, at, ev);
        }
    }

    /// Runs until the queue is empty or the next event would fire at or
    /// after `deadline`. Events exactly at `deadline` are *not* processed.
    ///
    /// Returns the number of events processed by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E),
    {
        let before = self.processed;
        while let Some((at, ev)) = self.queue.pop_before(deadline) {
            debug_assert!(at >= self.now, "event queue went backwards in time");
            self.now = at;
            self.processed += 1;
            handler(&mut self.state, &mut self.queue, at, ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn run_drains_queue() {
        let mut engine = Engine::new(Vec::new());
        engine.schedule(SimTime::from_secs(2), "b");
        engine.schedule(SimTime::from_secs(1), "a");
        engine.run(|log, _, _, ev| log.push(ev));
        assert_eq!(*engine.state(), vec!["a", "b"]);
        assert_eq!(engine.processed(), 2);
        assert_eq!(engine.now(), SimTime::from_secs(2));
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut engine = Engine::new(0u32);
        engine.schedule(SimTime::ZERO, ());
        engine.run(|count, queue, now, ()| {
            *count += 1;
            if *count < 5 {
                queue.schedule(now + SimDuration::from_secs(1), ());
            }
        });
        assert_eq!(*engine.state(), 5);
        assert_eq!(engine.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut engine = Engine::new(0u32);
        for s in 0..10 {
            engine.schedule(SimTime::from_secs(s), ());
        }
        let n = engine.run_until(SimTime::from_secs(5), |count, _, _, ()| *count += 1);
        assert_eq!(n, 5);
        assert_eq!(*engine.state(), 5);
        // The clock advances to the deadline even with events pending.
        assert_eq!(engine.now(), SimTime::from_secs(5));
        // Remaining events still fire on the next run.
        engine.run(|count, _, _, ()| *count += 1);
        assert_eq!(*engine.state(), 10);
    }

    #[test]
    fn run_until_event_at_deadline_not_processed() {
        let mut engine = Engine::new(0u32);
        engine.schedule(SimTime::from_secs(5), ());
        let n = engine.run_until(SimTime::from_secs(5), |count, _, _, ()| *count += 1);
        assert_eq!(n, 0);
        assert_eq!(*engine.state(), 0);
    }

    #[test]
    fn into_state_returns_final_state() {
        let mut engine = Engine::new(String::new());
        engine.schedule(SimTime::ZERO, 'x');
        engine.run(|s, _, _, c| s.push(c));
        assert_eq!(engine.into_state(), "x");
    }
}
