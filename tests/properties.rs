//! Property-based tests on core data structures and protocol invariants.

use proptest::prelude::*;

use cup::des::{DetRng, EventQueue, KeyId, NodeId, ReplicaId, SimDuration, SimTime};
use cup::overlay::{can::CanOverlay, zone::Zone, Overlay};
use cup::protocol::capacity::OutgoingQueues;
use cup::protocol::policy::{CutoffContext, CutoffPolicy};
use cup::protocol::popularity::{Popularity, ResetMode};
use cup::protocol::{IndexEntry, Update, UpdateKind};

fn arb_update(kind: UpdateKind) -> impl Strategy<Value = Update> {
    (0u32..5, 0u64..1_000, 1u64..2_000).prop_map(move |(replica, at, life)| {
        let entry = IndexEntry::new(
            KeyId(1),
            ReplicaId(replica),
            SimDuration::from_secs(life),
            SimTime::from_secs(at),
        );
        Update {
            key: KeyId(1),
            kind,
            entries: vec![entry],
            replica: ReplicaId(replica),
            depth: 1,
            origin: SimTime::from_secs(at),
            window_end: entry.expires_at(),
        }
    })
}

proptest! {
    /// Recursive zone splitting always partitions the parent exactly.
    #[test]
    fn zone_splits_partition_area(depth in 0usize..24, choices in proptest::collection::vec(any::<bool>(), 24)) {
        let mut zone = Zone::FULL;
        for &go_low in choices.iter().take(depth) {
            let Some((lo, hi)) = zone.split() else { break };
            prop_assert_eq!(lo.area() + hi.area(), zone.area());
            prop_assert!(lo.abuts(&hi), "split halves must be neighbors");
            zone = if go_low { lo } else { hi };
        }
    }

    /// A built CAN covers the space: every random point has an owner, and
    /// routing from any node reaches that owner.
    #[test]
    fn can_routing_terminates_at_owner(n in 2usize..48, seed in 0u64..500, key in 0u32..50) {
        let mut rng = DetRng::seed_from(seed);
        let can = CanOverlay::build(n, &mut rng).unwrap();
        let key = KeyId(key);
        let auth = can.authority(key);
        let start = NodeId((seed % n as u64) as u32);
        let path = can.route(start, key).unwrap();
        prop_assert_eq!(*path.last().unwrap(), auth);
        // Paths are simple (no repeated node: greedy strictly improves).
        let mut sorted: Vec<NodeId> = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), path.len());
    }

    /// The event queue is a stable priority queue: pops are time-ordered
    /// and FIFO within a timestamp.
    #[test]
    fn event_queue_is_stable(times in proptest::collection::vec(0u64..50, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), (t, i));
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at, SimTime::from_secs(t));
            if let Some((pt, pi)) = prev {
                prop_assert!(pt <= t);
                if pt == t {
                    prop_assert!(pi < i, "same-time events must stay FIFO");
                }
            }
            prev = Some((t, i));
        }
    }

    /// DetRng's bounded sampler never exceeds its bound and hits both
    /// halves of the range.
    #[test]
    fn rng_bounded_sampling(seed in any::<u64>(), bound in 2u64..10_000) {
        let mut rng = DetRng::seed_from(seed);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let x = rng.next_below(bound);
            prop_assert!(x < bound);
            if x < bound / 2 { low = true } else { high = true }
        }
        prop_assert!(low && high, "200 draws should cover both halves");
    }

    /// Capacity queues conserve updates: everything enqueued is either
    /// sent, still queued, or expired — never duplicated or lost.
    #[test]
    fn capacity_queues_conserve_updates(
        lives in proptest::collection::vec(1u64..500, 1..40),
        c in 0.0f64..1.0,
    ) {
        let mut q = OutgoingQueues::new();
        for (i, &life) in lives.iter().enumerate() {
            let entry = IndexEntry::new(
                KeyId(1),
                ReplicaId(i as u32),
                SimDuration::from_secs(life),
                SimTime::ZERO,
            );
            q.enqueue(NodeId((i % 3) as u32), Update {
                key: KeyId(1),
                kind: UpdateKind::Refresh,
                entries: vec![entry],
                replica: ReplicaId(i as u32),
                depth: 1,
                origin: SimTime::ZERO,
                window_end: entry.expires_at(),
            });
        }
        let now = SimTime::from_secs(100);
        let expired = lives.iter().filter(|&&l| l <= 100).count();
        let sent = q.service(now, c).len();
        prop_assert_eq!(sent + q.total_len() + expired, lives.len());
        // Full capacity sends everything unexpired.
        let sent2 = q.service(now, 1.0).len();
        let drained = q.service(now, 1.0).len();
        prop_assert_eq!(sent + sent2 + expired, lives.len());
        prop_assert_eq!(drained, 0);
        prop_assert_eq!(q.total_len(), 0);
    }

    /// Cut-off policies are monotone in popularity: more queries never
    /// flips a keep decision to a cut.
    #[test]
    fn policies_monotone_in_queries(
        alpha in 0.001f64..2.0,
        depth in 1u32..40,
        queries in 0u32..100,
    ) {
        for policy in [
            CutoffPolicy::Linear { alpha },
            CutoffPolicy::Logarithmic { alpha },
        ] {
            let lo = CutoffContext { queries_since_reset: queries, consecutive_empty: 0, depth };
            let hi = CutoffContext { queries_since_reset: queries + 1, consecutive_empty: 0, depth };
            if policy.keep_receiving(&lo) {
                prop_assert!(policy.keep_receiving(&hi));
            }
        }
    }

    /// Push-level decisions are monotone in depth: if a node at depth d
    /// is cut, every deeper node is cut too.
    #[test]
    fn push_level_monotone_in_depth(level in 0u32..40, depth in 0u32..40) {
        let p = CutoffPolicy::PushLevel { level };
        let at = |d: u32| p.keep_receiving(&CutoffContext {
            queries_since_reset: 0,
            consecutive_empty: 0,
            depth: d,
        });
        if !at(depth) {
            prop_assert!(!at(depth + 1));
        }
    }

    /// Replica-independent popularity is invariant under interleaving
    /// updates from other replicas.
    #[test]
    fn popularity_replica_independent(
        other_replicas in proptest::collection::vec(1u32..6, 0..20),
        queries in 0u32..5,
    ) {
        // Baseline: tracked replica only.
        let mut clean = Popularity::new();
        clean.on_update(ReplicaId(0), ResetMode::ReplicaIndependent);
        for _ in 0..queries {
            clean.record_query();
        }
        // Same sequence with arbitrary other-replica updates interleaved.
        let mut noisy = Popularity::new();
        noisy.on_update(ReplicaId(0), ResetMode::ReplicaIndependent);
        for _ in 0..queries {
            noisy.record_query();
        }
        for &r in &other_replicas {
            noisy.on_update(ReplicaId(r), ResetMode::ReplicaIndependent);
        }
        prop_assert_eq!(clean.queries_since_reset(), noisy.queries_since_reset());
        prop_assert_eq!(clean.consecutive_empty(), noisy.consecutive_empty());
    }

    /// Updates expire exactly when all their entries do.
    #[test]
    fn update_expiry_matches_entries(update in arb_update(UpdateKind::Refresh), probe in 0u64..4_000) {
        let now = SimTime::from_secs(probe);
        let all_expired = update.entries.iter().all(|e| !e.is_fresh(now));
        prop_assert_eq!(update.is_expired(now), all_expired);
    }

    /// Entry freshness is a half-open interval [stamped_at, expires_at).
    #[test]
    fn entry_freshness_interval(at in 0u64..1_000, life in 1u64..1_000, probe in 0u64..3_000) {
        let e = IndexEntry::new(
            KeyId(0),
            ReplicaId(0),
            SimDuration::from_secs(life),
            SimTime::from_secs(at),
        );
        let now = SimTime::from_secs(probe);
        prop_assert_eq!(e.is_fresh(now), probe < at + life);
    }
}
