//! Property tests for the lexer's code/prose split.
//!
//! The invariant every rule depends on: a banned pattern embedded in a
//! comment, a string literal, or a raw string must never survive into
//! the masked view, while the same pattern in code always does — and
//! masking never disturbs line structure, so findings map back to real
//! source lines.

use proptest::prelude::*;
use proptest::proptest;

/// The patterns the token rules actually hunt for.
const PATTERNS: &[&str] = &[
    "Instant::now(",
    "thread::sleep",
    "SystemTime",
    "Ordering::Relaxed",
    ".unwrap()",
    ".expect(",
];

/// Ways to wrap a pattern in prose — none of which may survive masking.
fn prose_wrap(which: usize, pat: &str) -> String {
    match which % 6 {
        0 => format!("// says {pat} in a comment\n"),
        1 => format!("/* block {pat} comment */\n"),
        2 => format!("/* outer /* nested {pat} */ tail */\n"),
        3 => format!("let s = \"quoted {pat} text\";\n"),
        4 => format!("let s = r#\"raw {pat} with \" inside\"#;\n"),
        5 => format!("let s = b\"bytes {pat}\";\n"),
        _ => unreachable!(),
    }
}

/// Ways to place the same pattern in code — all of which must survive.
fn code_wrap(which: usize, pat: &str) -> String {
    match which % 3 {
        0 => format!("let t = {pat};\n"),
        1 => format!("call({pat}, 1);\n"),
        2 => format!("if x {{ {pat} }}\n"),
        _ => unreachable!(),
    }
}

/// Filler lines interleaved around the interesting line, to exercise
/// offsets: plain code, comments, strings, lifetimes, chars.
fn filler(which: usize) -> &'static str {
    match which % 6 {
        0 => "fn id<'a>(x: &'a str) -> &'a str { x }\n",
        1 => "// an ordinary comment line\n",
        2 => "let c = 'x'; let nl = '\\n';\n",
        3 => "let s = \"plain string\";\n",
        4 => "struct T { field: u64 }\n",
        5 => "let v: Vec<u64> = Vec::new();\n",
        _ => unreachable!(),
    }
}

proptest! {
    #[test]
    fn patterns_in_prose_never_survive_masking(
        pat_i in 0usize..6,
        wrap_i in 0usize..6,
        pre in 0usize..6,
        post in 0usize..6,
    ) {
        let pat = PATTERNS[pat_i % PATTERNS.len()];
        let src = format!(
            "{}{}{}",
            filler(pre),
            prose_wrap(wrap_i, pat),
            filler(post)
        );
        let masked = cup_lint::lexer::mask(&src);
        prop_assert!(
            !masked.contains(pat),
            "pattern {pat:?} leaked out of prose wrap {wrap_i} in:\n{src}\nmasked:\n{masked}"
        );
        prop_assert_eq!(masked.lines().count(), src.lines().count());
        prop_assert_eq!(masked.len(), src.len());
    }

    #[test]
    fn patterns_in_code_always_survive_masking(
        pat_i in 0usize..6,
        wrap_i in 0usize..3,
        pre in 0usize..6,
        post in 0usize..6,
    ) {
        let pat = PATTERNS[pat_i % PATTERNS.len()];
        let src = format!(
            "{}{}{}",
            filler(pre),
            code_wrap(wrap_i, pat),
            filler(post)
        );
        let masked = cup_lint::lexer::mask(&src);
        prop_assert!(
            masked.contains(pat),
            "pattern {pat:?} was wrongly masked out of code wrap {wrap_i} in:\n{src}"
        );
        // And it survives on the same line it was written on.
        let line_in_src = src.lines().position(|l| l.contains(pat));
        let line_in_masked = masked.lines().position(|l| l.contains(pat));
        prop_assert_eq!(line_in_src, line_in_masked);
    }

    #[test]
    fn prose_and_code_mix_fires_exactly_once(
        pat_i in 0usize..6,
        prose_i in 0usize..6,
        code_i in 0usize..3,
        flip in 0usize..2,
    ) {
        // One prose occurrence and one code occurrence of the same
        // pattern, in either order: masking must keep exactly the code
        // one.
        let pat = PATTERNS[pat_i % PATTERNS.len()];
        let (a, b) = (prose_wrap(prose_i, pat), code_wrap(code_i, pat));
        let src = if flip == 0 {
            format!("{a}{b}")
        } else {
            format!("{b}{a}")
        };
        let masked = cup_lint::lexer::mask(&src);
        let count = masked.matches(pat).count();
        prop_assert_eq!(count, 1, "expected exactly the code occurrence in:\n{}", src);
    }
}
