//! The fault-sweep benchmark behind `BENCH_faults.json`.
//!
//! Runs the loss × crash-count fault grid (CUP second-chance vs all-out
//! push at every point, justification tracked) twice — serially and
//! across the sweep worker pool — and reports per-point resilience
//! economics: hit rate, stale-answer rate, justified ratio, drop counts,
//! and recovery latency. The rows must be byte-identical between the two
//! passes: that determinism (same `FaultPlan` ⇒ same run, whatever the
//! pool size) is part of what the artifact certifies.

use std::time::{Duration, Instant};

use cup_simnet::par::default_workers;
use cup_simnet::sweeps::{fault_grid_with, FaultGridPoint};
use cup_workload::Scenario;

/// One serial-vs-parallel run of the fault grid.
#[derive(Debug, Clone)]
pub struct FaultBenchReport {
    /// The grid rows (parallel run; asserted identical to the serial
    /// run's).
    pub points: Vec<FaultGridPoint>,
    /// Wall-clock of the serial (1-worker) sweep.
    pub wall_serial: Duration,
    /// Wall-clock of the parallel sweep.
    pub wall_parallel: Duration,
    /// Worker threads the parallel sweep used.
    pub workers: usize,
    /// Whether the two passes produced byte-identical rows (always true;
    /// recorded so the artifact proves the check ran).
    pub rows_identical: bool,
}

impl FaultBenchReport {
    /// Grid points per second for a wall-clock reading.
    fn points_per_sec(&self, wall: Duration) -> f64 {
        let secs = wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.points.len() as f64 / secs
        }
    }

    /// Points/sec of the serial pass.
    pub fn serial_points_per_sec(&self) -> f64 {
        self.points_per_sec(self.wall_serial)
    }

    /// Points/sec of the parallel pass.
    pub fn parallel_points_per_sec(&self) -> f64 {
        self.points_per_sec(self.wall_parallel)
    }

    /// Serial wall / parallel wall.
    pub fn speedup(&self) -> f64 {
        let parallel = self.wall_parallel.as_secs_f64();
        if parallel == 0.0 {
            0.0
        } else {
            self.wall_serial.as_secs_f64() / parallel
        }
    }
}

/// Runs the grid serially and in parallel, timing both.
///
/// # Panics
///
/// Panics if the parallel rows differ from the serial rows — fault runs
/// must be byte-identical whatever the sweep pool size.
pub fn run_fault_bench(
    base: &Scenario,
    losses: &[f64],
    crash_counts: &[u32],
    workers: usize,
) -> FaultBenchReport {
    let start = Instant::now();
    let serial = fault_grid_with(base, losses, crash_counts, 1);
    let wall_serial = start.elapsed();

    let start = Instant::now();
    let parallel = fault_grid_with(base, losses, crash_counts, workers);
    let wall_parallel = start.elapsed();

    assert_eq!(
        serial, parallel,
        "fault-grid rows must be byte-identical across sweep worker counts"
    );
    let jobs = losses.len() * crash_counts.len() * 2;
    FaultBenchReport {
        points: parallel,
        wall_serial,
        wall_parallel,
        workers: workers.clamp(1, jobs.max(1)),
        rows_identical: true,
    }
}

/// Convenience wrapper using the machine's sweep worker pool.
pub fn run_fault_bench_default(
    base: &Scenario,
    losses: &[f64],
    crash_counts: &[u32],
) -> FaultBenchReport {
    run_fault_bench(base, losses, crash_counts, default_workers())
}

/// Renders the report as the `BENCH_faults.json` document (hand-rolled
/// JSON; the workspace builds offline, without serde).
pub fn render_json(report: &FaultBenchReport, base: &Scenario, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"cup-faults loss x crash sweep\",\n");
    out.push_str(&format!("  \"nodes\": {},\n", base.nodes));
    out.push_str(&format!("  \"keys\": {},\n", base.keys));
    out.push_str(&format!(
        "  \"replicas_per_key\": {},\n",
        base.replicas_per_key
    ));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"workers\": {},\n", report.workers));
    out.push_str(&format!(
        "  \"serial_wall_ms\": {:.3},\n",
        report.wall_serial.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"parallel_wall_ms\": {:.3},\n",
        report.wall_parallel.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"parallel_points_per_sec\": {:.3},\n",
        report.parallel_points_per_sec()
    ));
    out.push_str(&format!("  \"speedup\": {:.3},\n", report.speedup()));
    out.push_str(&format!(
        "  \"rows_identical\": {},\n",
        report.rows_identical
    ));
    out.push_str("  \"runs\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        let comma = if i + 1 < report.points.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"loss\": {}, \"crashes\": {}, \
             \"total_cost\": {}, \"miss_cost\": {}, \"hit_rate\": {:.4}, \
             \"stale_rate\": {:.4}, \"justified\": {}, \"tracked\": {}, \
             \"justified_ratio\": {:.4}, \"dropped\": {}, \
             \"recovery_latency_secs\": {:.3}, \
             \"stale_age_p50_secs\": {:.3}, \"stale_age_p99_secs\": {:.3}, \
             \"query_p50_us\": {}, \"query_p90_us\": {}, \
             \"query_p99_us\": {}, \"query_p999_us\": {}}}{comma}\n",
            p.policy,
            p.loss,
            p.crashes,
            p.total_cost,
            p.miss_cost,
            p.hit_rate,
            p.stale_rate,
            p.justified,
            p.tracked,
            p.justified_ratio(),
            p.dropped,
            p.recovery_latency_secs,
            p.stale_age_p50_secs,
            p.stale_age_p99_secs,
            p.query_p50_us,
            p.query_p90_us,
            p.query_p99_us,
            p.query_p999_us,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cup_des::SimTime;

    fn tiny() -> Scenario {
        Scenario {
            nodes: 32,
            keys: 3,
            query_rate: 5.0,
            query_start: SimTime::from_secs(300),
            query_end: SimTime::from_secs(800),
            sim_end: SimTime::from_secs(1_200),
            seed: 9,
            ..Scenario::default()
        }
    }

    #[test]
    fn bench_runs_and_renders() {
        let report = run_fault_bench(&tiny(), &[0.0, 0.1], &[0], 2);
        assert_eq!(report.points.len(), 4);
        assert!(report.rows_identical);
        assert!(report.parallel_points_per_sec() > 0.0);
        let json = render_json(&report, &tiny(), 9);
        assert!(json.contains("\"policy\": \"second-chance\""));
        assert!(json.contains("\"policy\": \"always\""));
        assert!(json.contains("\"loss\": 0.1"));
        assert!(json.contains("\"rows_identical\": true"));
        assert!(json.contains("\"stale_age_p50_secs\""));
        assert!(json.contains("\"stale_age_p99_secs\""));
        for q in [
            "query_p50_us",
            "query_p90_us",
            "query_p99_us",
            "query_p999_us",
        ] {
            assert!(json.contains(q), "missing percentile field {q}");
        }
        // The query-latency tail is ordered: each percentile dominates
        // the one below it.
        assert!(report.points.iter().all(|p| {
            p.query_p50_us <= p.query_p90_us
                && p.query_p90_us <= p.query_p99_us
                && p.query_p99_us <= p.query_p999_us
        }));
        // The lossy arm actually serves stale answers, so the tail must
        // dominate (or equal) nothing — at minimum the field parses as a
        // number and the p99 is finite and non-negative.
        assert!(report
            .points
            .iter()
            .all(|p| p.stale_age_p99_secs >= 0.0 && p.stale_age_p99_secs.is_finite()));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
