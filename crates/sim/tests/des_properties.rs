//! Property tests for the DES primitives: RNG determinism, simulated-time
//! arithmetic, and event-queue ordering.

use proptest::prelude::*;

use cup_des::{DetRng, EventQueue, SimDuration, SimTime};

proptest! {
    /// Two generators with the same seed yield the same stream, whatever
    /// the seed; this is the root of all experiment reproducibility.
    #[test]
    fn same_seed_streams_agree(seed in any::<u64>(), draws in 1usize..200) {
        let mut a = DetRng::seed_from(seed);
        let mut b = DetRng::seed_from(seed);
        for _ in 0..draws {
            prop_assert_eq!(a.next(), b.next());
        }
    }

    /// Derived child streams are a pure function of (parent seed, label)
    /// and do not perturb the parent.
    #[test]
    fn derived_streams_are_stable(seed in any::<u64>(), label in 0u64..1_000) {
        let parent = DetRng::seed_from(seed);
        let mut c1 = parent.derive(label);
        let mut c2 = DetRng::seed_from(seed).derive(label);
        prop_assert_eq!(c1.next(), c2.next());
        // The parent's own stream is untouched by deriving children.
        let mut p1 = DetRng::seed_from(seed);
        let mut p2 = DetRng::seed_from(seed);
        let _ = p2.derive(label ^ 1);
        prop_assert_eq!(p1.next(), p2.next());
    }

    /// Bounded draws stay in bounds for any seed and bound.
    #[test]
    fn next_below_stays_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Unit-interval draws never reach 1.0.
    #[test]
    fn next_f64_is_half_open(seed in any::<u64>()) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..64 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x), "{} outside [0, 1)", x);
        }
    }

    /// Time plus a span round-trips through subtraction, and ordering
    /// matches the underlying microsecond counts.
    #[test]
    fn time_arithmetic_round_trips(base_us in 0u64..1 << 40, span_us in 0u64..1 << 40) {
        let t = SimTime::from_micros(base_us);
        let d = SimDuration::from_micros(span_us);
        let later = t + d;
        prop_assert_eq!(later - t, d);
        prop_assert_eq!(later.saturating_since(t), d);
        prop_assert!(later >= t);
        prop_assert_eq!(later.as_micros(), base_us + span_us);
    }

    /// Saturating operations clamp instead of wrapping, in both
    /// directions.
    #[test]
    fn saturation_clamps(a_us in 0u64..1 << 40, b_us in 0u64..1 << 40) {
        let (a, b) = (SimTime::from_micros(a_us), SimTime::from_micros(b_us));
        let since = a.saturating_since(b);
        if a_us >= b_us {
            prop_assert_eq!(since.as_micros(), a_us - b_us);
        } else {
            prop_assert_eq!(since, SimDuration::ZERO);
        }
        prop_assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_micros(a_us)),
            SimTime::MAX
        );
        let (da, db) = (SimDuration::from_micros(a_us), SimDuration::from_micros(b_us));
        prop_assert_eq!(
            da.saturating_sub(db).as_micros(),
            a_us.saturating_sub(b_us)
        );
    }

    /// Pops come out in time order, FIFO within equal timestamps — the
    /// determinism contract of the future-event list.
    #[test]
    fn event_queue_pops_in_stable_order(times in proptest::collection::vec(0u64..30, 1..120)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut popped = Vec::with_capacity(times.len());
        let mut prev: Option<(SimTime, usize)> = None;
        while let Some((at, i)) = q.pop() {
            prop_assert_eq!(at, SimTime::from_secs(times[i]));
            if let Some((pat, pi)) = prev {
                prop_assert!(pat <= at, "pops must be time-ordered");
                if pat == at {
                    prop_assert!(pi < i, "same-instant events must stay FIFO");
                }
            }
            prev = Some((at, i));
            popped.push(i);
        }
        // Every scheduled event came out exactly once.
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// Interleaving schedule and pop keeps the head the earliest pending
    /// event.
    #[test]
    fn event_queue_head_is_monotone_under_interleaving(
        times in proptest::collection::vec(0u64..50, 2..60),
    ) {
        let mut q = EventQueue::new();
        let mut last_popped = SimTime::ZERO;
        for (i, &t) in times.iter().enumerate() {
            // Never schedule into the popped past: the engine's clock
            // only moves forward.
            let at = SimTime::from_secs(t).max(last_popped);
            q.schedule(at, i);
            if i % 2 == 1 {
                let (at, _) = q.pop().expect("queue cannot be empty here");
                prop_assert!(at >= last_popped);
                last_popped = at;
            }
        }
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last_popped);
            last_popped = at;
        }
    }
}
